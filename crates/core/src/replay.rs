//! Replay: re-creating a recorded execution, sequentially or with epochs on
//! real OS threads in parallel.
//!
//! Replaying an epoch is mechanical: start from the epoch's checkpoint,
//! follow the schedule log slice by slice (running each named thread for
//! exactly the logged instruction count), re-execute deterministic syscalls
//! against the epoch's kernel, satisfy logged-class syscalls from the
//! syscall log, deliver logged wakes and signals at their recorded points,
//! and finally verify the machine digest against the recording. Because
//! epochs are independent given their checkpoints, offline replay
//! parallelizes across real cores — the paper's replay-speed result, which
//! this module reproduces with genuine OS threads.
//!
//! Parallel replay is panic-isolated: a worker that dies mid-epoch —
//! whether from an injected [`crate::FaultPlan`] fault or a real bug — is
//! caught with `catch_unwind` and the epoch re-executed up to a bounded
//! retry budget; exhaustion surfaces as a typed
//! [`ReplayError::WorkerPanicked`] instead of aborting the process.

use dp_os::abi;
use dp_os::kernel::Kernel;
use dp_vm::observer::NullObserver;
use dp_vm::{Machine, Program, SliceLimits, StopReason, ThreadStatus, Tid};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::checkpoint::Checkpoint;
use crate::error::ReplayError;
use crate::faults::INJECTED_PANIC_TAG;
use crate::logs::{apply_entry, request_hash, SchedEvent};
use crate::observe::{ReplayEvent, ReplayObserver};
use crate::recording::{EpochRecord, Recording};

/// Re-executions of a panicked replay epoch before giving up.
const REPLAY_RETRY_BUDGET: u32 = 3;

/// Result of a verified replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Epochs replayed and verified.
    pub epochs: u32,
    /// Guest instructions re-executed.
    pub instructions: u64,
    /// Digest of the final machine state.
    pub final_hash: u64,
    /// Exit code, if the guest halted via `exit`.
    pub exit_code: Option<u64>,
}

/// Replays one epoch from `start`, returning the end state.
///
/// # Errors
///
/// Any [`ReplayError`] if the recording cannot be followed or the end state
/// does not verify.
pub fn replay_epoch(
    start: &Checkpoint,
    epoch: &EpochRecord,
) -> Result<(Machine, Kernel, u64), ReplayError> {
    replay_epoch_observed(start, epoch, &mut NullObserver)
}

/// [`replay_epoch`] with an attached [`ReplayObserver`]: identical replay
/// and verification, but every data access and kernel-level event is also
/// fed to `obs` in the recorded total order.
///
/// # Errors
///
/// Any [`ReplayError`] if the recording cannot be followed or the end state
/// does not verify.
pub fn replay_epoch_observed<O: ReplayObserver>(
    start: &Checkpoint,
    epoch: &EpochRecord,
    obs: &mut O,
) -> Result<(Machine, Kernel, u64), ReplayError> {
    let mut machine = start.machine.clone();
    let mut kernel = start.kernel.clone();
    let mut cursor = epoch.syscalls.cursor();
    let mut instructions = 0u64;
    let err_sched = |tid, detail: String| ReplayError::ScheduleMismatch {
        epoch: epoch.index,
        tid,
        detail,
    };

    for event in epoch.schedule.events() {
        match *event {
            SchedEvent::LoggedWake { tid } => {
                let pending = machine.thread(tid).pending.ok_or_else(|| {
                    err_sched(tid, "logged wake for thread with no pending syscall".into())
                })?;
                let entry = cursor.pop(tid).ok_or_else(|| ReplayError::LogMismatch {
                    epoch: epoch.index,
                    tid,
                    detail: "logged wake with no log entry".into(),
                })?;
                if entry.num != pending.num {
                    return Err(ReplayError::LogMismatch {
                        epoch: epoch.index,
                        tid,
                        detail: format!(
                            "wake entry {} vs pending {}",
                            abi::name(entry.num),
                            abi::name(pending.num)
                        ),
                    });
                }
                obs.on_replay_event(&ReplayEvent::Wake { tid, req: pending });
                apply_entry(&mut machine, entry);
            }
            SchedEvent::Signal { tid, sig } => {
                let (got, handler) = kernel.take_pending_signal(tid).ok_or_else(|| {
                    ReplayError::ScheduleMismatch {
                        epoch: epoch.index,
                        tid,
                        detail: "signal event but none pending".into(),
                    }
                })?;
                if got != sig {
                    return Err(err_sched(tid, format!("signal {got} logged as {sig}")));
                }
                obs.on_replay_event(&ReplayEvent::SignalDelivered { tid, sig });
                machine.push_signal_frame(tid, handler, &[sig]);
            }
            SchedEvent::Slice { tid, instrs } => {
                let mut remaining = instrs;
                while remaining > 0 {
                    if !machine.thread(tid).is_ready() {
                        return Err(err_sched(
                            tid,
                            format!(
                                "slice of {remaining} instrs but thread is {:?}",
                                machine.thread(tid).status
                            ),
                        ));
                    }
                    let run = machine.run_slice(tid, SliceLimits::budget(remaining), &mut *obs)?;
                    instructions += run.executed;
                    remaining -= run.executed;
                    match run.stop {
                        StopReason::Budget | StopReason::IcountTarget => {}
                        StopReason::Exited => {
                            kernel.on_thread_exited(&mut machine, tid);
                            obs.on_replay_event(&ReplayEvent::ThreadExited { tid });
                            if remaining > 0 {
                                return Err(err_sched(
                                    tid,
                                    format!("exited with {remaining} instrs left in slice"),
                                ));
                            }
                        }
                        StopReason::Syscall(req) => {
                            obs.on_replay_event(&ReplayEvent::Trap {
                                tid,
                                icount: machine.thread(tid).icount,
                                req,
                            });
                            if abi::is_logged(req.num) {
                                let my_hash = request_hash(&machine, &req);
                                match cursor.peek(tid) {
                                    Some(e)
                                        if e.num == req.num
                                            && e.arg_hash == my_hash
                                            && !e.via_wake =>
                                    {
                                        let e = cursor.pop(tid).unwrap();
                                        apply_entry(&mut machine, e);
                                    }
                                    // Blocked completion: the LoggedWake
                                    // event applies it later.
                                    Some(e) if e.num == req.num && e.via_wake => {}
                                    Some(e) => {
                                        return Err(ReplayError::LogMismatch {
                                            epoch: epoch.index,
                                            tid,
                                            detail: format!(
                                                "issued {} but log head is {}",
                                                abi::name(req.num),
                                                abi::name(e.num)
                                            ),
                                        })
                                    }
                                    // Blocks past the epoch boundary.
                                    None => {}
                                }
                            } else {
                                kernel.handle(&mut machine, req, 0);
                                if req.num == abi::SYS_SPAWN {
                                    let ret = machine.thread(tid).regs[0];
                                    if !abi::is_err(ret) {
                                        obs.on_replay_event(&ReplayEvent::Spawned {
                                            parent: tid,
                                            child: Tid(ret as u32),
                                        });
                                    }
                                }
                            }
                        }
                        StopReason::Atomic { .. } => {}
                    }
                    if machine.thread(tid).status == ThreadStatus::Waiting && remaining > 0 {
                        return Err(err_sched(
                            tid,
                            format!("blocked with {remaining} instrs left in slice"),
                        ));
                    }
                    if machine.halted().is_some() {
                        if remaining > 0 {
                            return Err(err_sched(tid, "halted mid-slice".into()));
                        }
                        break;
                    }
                }
            }
        }
    }

    let actual = machine.state_hash();
    if actual != epoch.end_machine_hash {
        return Err(ReplayError::HashMismatch {
            epoch: epoch.index,
            expected: epoch.end_machine_hash,
            actual,
        });
    }
    Ok((machine, kernel, instructions))
}

/// Replays one epoch with panic isolation: a panicking worker — injected
/// via the recording's [`crate::FaultPlan`] or real — is retried with a
/// fresh attempt number up to [`REPLAY_RETRY_BUDGET`] times, then surfaced
/// as [`ReplayError::WorkerPanicked`].
fn replay_epoch_guarded(
    plan: &crate::faults::FaultPlan,
    start: &Checkpoint,
    epoch: &EpochRecord,
) -> Result<(Machine, Kernel, u64), ReplayError> {
    let mut attempt = 0u32;
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            if plan.worker_panics(epoch.index, attempt) {
                panic!(
                    "{INJECTED_PANIC_TAG} (replay epoch {}, attempt {attempt})",
                    epoch.index
                );
            }
            replay_epoch(start, epoch)
        }));
        match run {
            Ok(result) => return result,
            Err(_) => {
                attempt += 1;
                if attempt > REPLAY_RETRY_BUDGET {
                    return Err(ReplayError::WorkerPanicked {
                        epoch: Some(epoch.index),
                    });
                }
            }
        }
    }
}

pub(crate) fn check_program(
    recording: &Recording,
    program: &Arc<Program>,
) -> Result<(), ReplayError> {
    let actual = program.content_hash();
    if actual != recording.meta.program_hash {
        return Err(ReplayError::ProgramMismatch {
            expected: recording.meta.program_hash,
            actual,
        });
    }
    Ok(())
}

/// Replays the whole recording sequentially, chaining state across epochs
/// from the initial checkpoint.
///
/// # Errors
///
/// Any [`ReplayError`] on mismatch.
pub fn replay_sequential(
    recording: &Recording,
    program: &Arc<Program>,
) -> Result<ReplayReport, ReplayError> {
    check_program(recording, program)?;
    let initial = Checkpoint::from_image(program.clone(), recording.initial.clone());
    let mut state = (initial.machine, initial.kernel);
    let mut instructions = 0u64;
    let mut final_hash = recording.meta.initial_machine_hash;
    for epoch in &recording.epochs {
        let start = Checkpoint::capture(&state.0, &state.1);
        let (m, k, n) = replay_epoch(&start, epoch)?;
        instructions += n;
        final_hash = epoch.end_machine_hash;
        state = (m, k);
    }
    Ok(ReplayReport {
        epochs: recording.epochs.len() as u32,
        instructions,
        final_hash,
        exit_code: state.0.halted(),
    })
}

/// Replays all epochs in parallel on `threads` real OS threads, using the
/// per-epoch checkpoints stored in the recording. Epochs are independent
/// given their checkpoints, so this is an embarrassingly parallel verify —
/// the mechanism behind the paper's parallel-replay speedups.
///
/// # Errors
///
/// [`ReplayError::BadRequest`] if the recording lacks checkpoints;
/// otherwise the first epoch error encountered.
pub fn replay_parallel(
    recording: &Recording,
    program: &Arc<Program>,
    threads: usize,
) -> Result<ReplayReport, ReplayError> {
    check_program(recording, program)?;
    if !recording.has_checkpoints() {
        return Err(ReplayError::BadRequest {
            detail: "recording has no per-epoch checkpoints".into(),
        });
    }
    let threads = threads.max(1);
    let n = recording.epochs.len();
    // Interleaved round-robin partitioning balances long/short epochs.
    let mut chunks: Vec<Vec<&EpochRecord>> = vec![Vec::new(); threads];
    for (i, e) in recording.epochs.iter().enumerate() {
        chunks[i % threads].push(e);
    }
    // The recording carries the fault plan it was made under; replay
    // re-injects the same worker panics to exercise the same recovery.
    let plan = recording.meta.config.faults;
    let per_worker: Vec<Result<u64, ReplayError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let program = program.clone();
                scope.spawn(move || {
                    let mut instructions = 0u64;
                    for epoch in chunk {
                        let image = epoch.start.clone().ok_or_else(|| ReplayError::BadRequest {
                            detail: format!("epoch {} has no checkpoint", epoch.index),
                        })?;
                        let start = Checkpoint::from_image(program.clone(), image);
                        let (_, _, n) = replay_epoch_guarded(&plan, &start, epoch)?;
                        instructions += n;
                    }
                    Ok(instructions)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // A worker that dies outside the guarded epoch body is a
                // harness bug, not a corrupt recording — surface it as a
                // typed error rather than aborting the replay.
                h.join()
                    .unwrap_or(Err(ReplayError::WorkerPanicked { epoch: None }))
            })
            .collect()
    });
    let mut instructions = 0u64;
    for res in per_worker {
        instructions += res?;
    }
    let final_hash = recording
        .epochs
        .last()
        .map(|e| e.end_machine_hash)
        .unwrap_or(recording.meta.initial_machine_hash);
    Ok(ReplayReport {
        epochs: n as u32,
        instructions,
        final_hash,
        exit_code: None,
    })
}

/// Replays up to a point of interest and returns the machine state there:
/// epoch `epoch`, just after thread `tid` reaches instruction count
/// `icount`. The debugging workflow ("inspect state right before the race
/// fired") the paper motivates deterministic replay with.
///
/// # Errors
///
/// [`ReplayError::BadRequest`] for out-of-range epochs or when the
/// recording lacks checkpoints; replay errors otherwise.
pub fn replay_to_point(
    recording: &Recording,
    program: &Arc<Program>,
    epoch_index: u32,
    tid: Tid,
    icount: u64,
) -> Result<Machine, ReplayError> {
    check_program(recording, program)?;
    let epoch =
        recording
            .epochs
            .get(epoch_index as usize)
            .ok_or_else(|| ReplayError::BadRequest {
                detail: format!("epoch {epoch_index} out of range"),
            })?;
    let image = epoch.start.clone().ok_or_else(|| ReplayError::BadRequest {
        detail: "recording has no per-epoch checkpoints".into(),
    })?;
    let start = Checkpoint::from_image(program.clone(), image);
    let mut machine = start.machine.clone();
    let mut kernel = start.kernel.clone();
    let mut cursor = epoch.syscalls.cursor();

    for event in epoch.schedule.events() {
        match *event {
            SchedEvent::LoggedWake { tid: t } => {
                if let Some(entry) = cursor.pop(t) {
                    apply_entry(&mut machine, entry);
                }
            }
            SchedEvent::Signal { tid: t, sig } => {
                if let Some((_, handler)) = kernel.take_pending_signal(t) {
                    machine.push_signal_frame(t, handler, &[sig]);
                }
            }
            SchedEvent::Slice { tid: t, instrs } => {
                let mut remaining = instrs;
                while remaining > 0 && machine.thread(t).is_ready() {
                    let stop_at = if t == tid { Some(icount) } else { None };
                    if let Some(target) = stop_at {
                        if machine.thread(t).icount >= target {
                            return Ok(machine);
                        }
                    }
                    let run = machine.run_slice(
                        t,
                        SliceLimits {
                            max_instrs: remaining,
                            icount_target: stop_at,
                            stop_at_atomics: false,
                        },
                        &mut NullObserver,
                    )?;
                    remaining -= run.executed;
                    match run.stop {
                        StopReason::IcountTarget => return Ok(machine),
                        StopReason::Exited => {
                            kernel.on_thread_exited(&mut machine, t);
                            break;
                        }
                        StopReason::Syscall(req) => {
                            if abi::is_logged(req.num) {
                                if let Some(e) = cursor.pop(t) {
                                    apply_entry(&mut machine, e);
                                }
                            } else {
                                kernel.handle(&mut machine, req, 0);
                            }
                        }
                        StopReason::Budget | StopReason::Atomic { .. } => {}
                    }
                    if machine.halted().is_some() {
                        return Ok(machine);
                    }
                }
            }
        }
    }
    Ok(machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DoublePlayConfig;
    use crate::record::coordinator::record;
    use crate::record::testutil::{atomic_counter_spec, racy_counter_spec};

    #[test]
    fn sequential_replay_verifies_every_epoch() {
        let spec = atomic_counter_spec(2000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(5_000);
        let bundle = record(&spec, &config).unwrap();
        let report = replay_sequential(&bundle.recording, &spec.program).unwrap();
        assert_eq!(report.epochs as u64, bundle.stats.epochs);
        assert_eq!(report.exit_code, Some(4000));
        assert!(report.instructions > 0);
    }

    #[test]
    fn parallel_replay_matches_sequential() {
        let spec = atomic_counter_spec(3000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000);
        let bundle = record(&spec, &config).unwrap();
        let seq = replay_sequential(&bundle.recording, &spec.program).unwrap();
        let par = replay_parallel(&bundle.recording, &spec.program, 4).unwrap();
        assert_eq!(par.epochs, seq.epochs);
        assert_eq!(par.instructions, seq.instructions);
        assert_eq!(par.final_hash, seq.final_hash);
    }

    #[test]
    fn racy_recordings_still_replay_exactly() {
        // The whole point: even when the original run diverged and rolled
        // back, the *recording* replays deterministically.
        for seed in 0..4 {
            let spec = racy_counter_spec(2500);
            let config = DoublePlayConfig {
                tp_quantum: 200,
                tp_jitter: 300,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(15_000)
                    .hidden_seed(seed)
            };
            let bundle = record(&spec, &config).unwrap();
            let report = replay_sequential(&bundle.recording, &spec.program).unwrap();
            assert_eq!(report.epochs as u64, bundle.stats.epochs);
            let par = replay_parallel(&bundle.recording, &spec.program, 3).unwrap();
            assert_eq!(par.final_hash, report.final_hash);
        }
    }

    #[test]
    fn wrong_program_is_rejected() {
        let spec = atomic_counter_spec(500, 2);
        let config = DoublePlayConfig::new(2);
        let bundle = record(&spec, &config).unwrap();
        let other = atomic_counter_spec(501, 2);
        assert!(matches!(
            replay_sequential(&bundle.recording, &other.program),
            Err(ReplayError::ProgramMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_schedule_is_detected() {
        let spec = atomic_counter_spec(1000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(5_000);
        let mut bundle = record(&spec, &config).unwrap();
        // Tamper: extend the first slice of the first epoch.
        let first = &mut bundle.recording.epochs[0];
        let mut events: Vec<SchedEvent> = first.schedule.events().to_vec();
        if let Some(SchedEvent::Slice { instrs, .. }) = events.first_mut() {
            *instrs += 1;
        }
        first.schedule = events.into_iter().collect();
        let err = replay_sequential(&bundle.recording, &spec.program).unwrap_err();
        assert!(
            matches!(
                err,
                ReplayError::HashMismatch { .. }
                    | ReplayError::ScheduleMismatch { .. }
                    | ReplayError::LogMismatch { .. }
            ),
            "tampering not detected: {err:?}"
        );
    }

    #[test]
    fn replay_to_point_stops_at_icount() {
        let spec = atomic_counter_spec(2000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(5_000);
        let bundle = record(&spec, &config).unwrap();
        // Pick a point inside epoch 1: thread 1 at 500 instructions.
        let m = replay_to_point(&bundle.recording, &spec.program, 0, Tid(1), 500).unwrap();
        assert!(m.thread(Tid(1)).icount <= 500);
        // Out-of-range epoch is a bad request.
        assert!(matches!(
            replay_to_point(&bundle.recording, &spec.program, 9999, Tid(0), 1),
            Err(ReplayError::BadRequest { .. })
        ));
    }

    #[test]
    fn replay_worker_panics_retry_then_surface_typed_error() {
        crate::faults::silence_injected_panics();
        let spec = atomic_counter_spec(2000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000);
        let mut bundle = record(&spec, &config).unwrap();
        let clean = replay_parallel(&bundle.recording, &spec.program, 2).unwrap();

        // Sub-certain panics: workers die, retries converge, result exact.
        bundle.recording.meta.config = bundle.recording.meta.config.faults(
            crate::faults::FaultPlan::none()
                .seed(9)
                .worker_panics_with(0.25),
        );
        let report = replay_parallel(&bundle.recording, &spec.program, 2).unwrap();
        assert_eq!(report.final_hash, clean.final_hash);
        assert_eq!(report.instructions, clean.instructions);

        // Certain panics: the retry budget must surface a typed error, not
        // abort the process.
        bundle.recording.meta.config = bundle
            .recording
            .meta
            .config
            .faults(crate::faults::FaultPlan::none().worker_panics_with(1.0));
        assert!(matches!(
            replay_parallel(&bundle.recording, &spec.program, 2),
            Err(ReplayError::WorkerPanicked { epoch: Some(_) })
        ));
    }

    #[test]
    fn parallel_replay_without_checkpoints_is_rejected() {
        let spec = atomic_counter_spec(1000, 2);
        let config = DoublePlayConfig::new(2).keep_checkpoints(false);
        let bundle = record(&spec, &config).unwrap();
        assert!(matches!(
            replay_parallel(&bundle.recording, &spec.program, 2),
            Err(ReplayError::BadRequest { .. })
        ));
        // Sequential replay still works without checkpoints.
        assert!(replay_sequential(&bundle.recording, &spec.program).is_ok());
    }
}
