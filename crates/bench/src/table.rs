//! Plain-text table rendering for the experiment reports.

use std::fmt;

/// A printable experiment artifact (one table or figure's data series).
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id + paper artifact, e.g. "E2 / Fig: overhead, spare cores".
    pub title: String,
    /// Explanation of what to look for (the paper-shape claim).
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {}", self.title)?;
        if !self.caption.is_empty() {
            writeln!(f, "   {}", self.caption)?;
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, "| {:width$} ", c, width = widths[i])?;
            }
            writeln!(f, "|")
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}
