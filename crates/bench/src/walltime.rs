//! Minimal wall-clock micro-benchmark harness.
//!
//! The `[[bench]]` targets are plain `harness = false` binaries built on
//! this module: each sample runs the closure once, and the line printed per
//! benchmark reports the median and minimum over all samples. It trades
//! Criterion's statistics for zero external dependencies — good enough to
//! spot order-of-magnitude regressions in CI logs.

use std::time::{Duration, Instant};

/// Times `f` over `samples` runs (after one untimed warmup) and prints a
/// `group/name: median .. min ..` line. Returns the median.
pub fn bench<T>(group: &str, name: &str, samples: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .collect();
    times.sort();
    let median = times[times.len() / 2];
    println!(
        "{group}/{name}: median {median:?} min {:?} ({} samples)",
        times[0],
        times.len()
    );
    median
}

/// Like [`bench`], but annotates the line with a throughput figure derived
/// from `elements` work items per run.
pub fn bench_throughput<T>(
    group: &str,
    name: &str,
    samples: usize,
    elements: u64,
    f: impl FnMut() -> T,
) {
    let median = bench(group, name, samples, f);
    let secs = median.as_secs_f64();
    if secs > 0.0 {
        let rate = elements as f64 / secs;
        println!("{group}/{name}: {rate:.3e} elements/s");
    }
}
