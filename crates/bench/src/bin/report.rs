//! Regenerates the paper's tables and figures. Usage:
//!
//! ```text
//! report [small|medium|large] [e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15 e16 e17 e18 | all]
//! ```
//!
//! `e14` (the multi-session service soak) additionally writes its
//! machine-readable perf record to `BENCH_6.json` in the working
//! directory; `e15` (sharded parallel journaling) writes
//! `BENCH_7.json`; `e16` (the `dpnet` socket service) writes
//! `BENCH_8.json`; `e17` (crash-resume) writes `BENCH_9.json`;
//! `e18` (incremental state hashing) writes `BENCH_10.json`.

use dp_bench::experiments as exp;
use dp_workloads::Size;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size = match args.first().map(|s| s.as_str()) {
        Some("small") => Size::Small,
        Some("large") => Size::Large,
        _ => Size::Medium,
    };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with('e') || *a == "all")
        .map(|s| s.as_str())
        .collect();
    let want = |id: &str| which.is_empty() || which.contains(&"all") || which.contains(&id);

    println!("DoublePlay reproduction report (size = {size})");
    println!("================================================\n");
    if want("e1") {
        println!("{}", exp::table1(size));
    }
    if want("e2") {
        println!("{}", exp::fig_overhead(size, true));
    }
    if want("e3") {
        println!("{}", exp::fig_overhead(size, false));
    }
    if want("e4") {
        println!("{}", exp::table_logsize(size));
    }
    if want("e5") {
        println!("{}", exp::table_baselines(size));
    }
    if want("e6") {
        println!("{}", exp::fig_epoch_length(size));
        println!("{}", exp::fig_adaptive(size));
    }
    if want("e7") {
        println!("{}", exp::fig_replay_speed(size));
    }
    if want("e8") {
        println!("{}", exp::table_rollback(size));
    }
    if want("e9") {
        println!("{}", exp::fig_recovery_ablation(size));
    }
    if want("e10") {
        println!("{}", exp::table_faults(size));
    }
    if want("e11") {
        println!("{}", exp::table_analyze(size));
    }
    if want("e12") {
        println!("{}", exp::table_journal(size));
    }
    if want("e13") {
        println!("{}", exp::table_wallclock(size));
    }
    if want("e14") {
        let run = exp::service_run(size);
        println!("{}", exp::table_service(&run));
        let json = exp::bench6_json(&run);
        match std::fs::write("BENCH_6.json", &json) {
            Ok(()) => println!("wrote BENCH_6.json"),
            Err(e) => eprintln!("warning: cannot write BENCH_6.json: {e}"),
        }
    }
    if want("e15") {
        let run = exp::shard_run(size);
        println!("{}", exp::table_shards(&run));
        let json = exp::bench7_json(&run);
        match std::fs::write("BENCH_7.json", &json) {
            Ok(()) => println!("wrote BENCH_7.json"),
            Err(e) => eprintln!("warning: cannot write BENCH_7.json: {e}"),
        }
    }
    if want("e16") {
        let run = exp::dpnet_run(size);
        println!("{}", exp::table_dpnet(&run));
        let json = exp::bench8_json(&run);
        match std::fs::write("BENCH_8.json", &json) {
            Ok(()) => println!("wrote BENCH_8.json"),
            Err(e) => eprintln!("warning: cannot write BENCH_8.json: {e}"),
        }
    }
    if want("e17") {
        let run = exp::resume_run(size);
        println!("{}", exp::table_resume(&run));
        let json = exp::bench9_json(&run);
        match std::fs::write("BENCH_9.json", &json) {
            Ok(()) => println!("wrote BENCH_9.json"),
            Err(e) => eprintln!("warning: cannot write BENCH_9.json: {e}"),
        }
    }
    if want("e18") {
        let run = exp::hash_run(size);
        println!("{}", exp::table_hash_sweep(&run));
        println!("{}", exp::table_hash_record(&run));
        let json = exp::bench10_json(&run);
        match std::fs::write("BENCH_10.json", &json) {
            Ok(()) => println!("wrote BENCH_10.json"),
            Err(e) => eprintln!("warning: cannot write BENCH_10.json: {e}"),
        }
    }
}
