//! Overhead-composition diagnostics: prints the full `RecorderStats`
//! breakdown (execution, checkpoint, log, epoch-parallel, and recovery
//! cycles) for a few representative workload/thread configurations —
//! useful when calibrating the cost model or investigating a regression.

fn main() {
    for (name, threads) in [
        ("ocean", 4),
        ("aget", 2),
        ("kvstore", 2),
        ("webserve", 2),
        ("water", 4),
    ] {
        let case = dp_workloads::suite(threads, dp_workloads::Size::Medium)
            .into_iter()
            .find(|c| c.name == name)
            .unwrap();
        let config = dp_bench::config_for(threads);
        let b = dp_core::record(&case.spec, &config).unwrap();
        let s = b.stats;
        println!(
            "{name}@{threads}: ovh={:.1}% native={} recorded={} tp_exec={} ckpt={} logw={} ep={} recov={} epochs={} div={} sched_ev={} dirty={}",
            s.overhead() * 100.0,
            s.native_cycles,
            s.recorded_cycles,
            s.tp_exec_cycles,
            s.checkpoint_cycles,
            s.log_write_cycles,
            s.ep_cycles,
            s.recovery_cycles,
            s.epochs,
            s.divergences,
            b.recording.schedule_events(),
            s.dirty_pages
        );
    }
}
