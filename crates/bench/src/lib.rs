//! # dp-bench — the evaluation harness
//!
//! Regenerates every table and figure of the DoublePlay evaluation
//! (experiments E1–E15; the mapping to paper artifacts is in DESIGN.md).
//! The `report` binary prints them; the wall-clock benches (see
//! [`walltime`]) measure the real cost of the same operations.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
pub mod walltime;

pub use experiments::config_for;
pub use table::Table;
