//! # dp-bench — the evaluation harness
//!
//! Regenerates every table and figure of the DoublePlay evaluation
//! (experiments E1–E9; the mapping to paper artifacts is in DESIGN.md).
//! The `report` binary prints them; the Criterion benches measure the real
//! wall-clock cost of the same operations.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::config_for;
pub use table::Table;
