//! The experiment runners: one function per table/figure of the paper's
//! evaluation (experiment ids E1–E12, see DESIGN.md).
//!
//! Absolute numbers come from the simulated-time cost model and will not
//! match the paper's testbed; the *shapes* — who wins, by what factor,
//! how overhead moves with thread count, epoch length, and race frequency —
//! are the reproduction targets recorded in EXPERIMENTS.md.

use crate::table::Table;
use dp_core::{measure_native, record, replay_parallel, replay_sequential, DoublePlayConfig};
use dp_workloads::{racy_suite, suite, Size, WorkloadCase};
use std::time::Instant;

/// The standard recorder configuration for a thread count.
pub fn config_for(threads: usize) -> DoublePlayConfig {
    DoublePlayConfig::new(threads).epoch_cycles(200_000)
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// E1 / Table 1 — workload characteristics.
pub fn table1(size: Size) -> Table {
    let mut t = Table::new(
        "E1 / Table 1: workload characteristics (4 worker threads)",
        "instructions, syscall mix and sync density determine every later result",
        &[
            "workload",
            "category",
            "instructions",
            "syscalls",
            "logged",
            "futex blocks",
            "io bytes",
        ],
    );
    for case in suite(4, size) {
        let (mut machine, mut kernel) = case.spec.boot();
        dp_os::DirectExecutor::default()
            .run(&mut machine, &mut kernel, u64::MAX)
            .expect("workload failed");
        (case.verify)(&machine, &kernel).expect("workload verification failed");
        let instrs: u64 = machine.threads().iter().map(|th| th.icount).sum();
        let stats = kernel.stats;
        t.row(vec![
            case.name.to_string(),
            case.category.to_string(),
            instrs.to_string(),
            stats.syscalls.to_string(),
            stats.logged_syscalls.to_string(),
            stats.futex_blocks.to_string(),
            kernel.fs().io_bytes.to_string(),
        ]);
    }
    t
}

/// E2/E3 / Fig: logging overhead with (`spare=true`) or without spare
/// cores, for 2 and 4 worker threads. The paper's headline: ~15% average
/// at 2 threads, ~28% at 4, with spare cores.
pub fn fig_overhead(size: Size, spare: bool) -> Table {
    let label = if spare {
        "spare cores"
    } else {
        "no spare cores"
    };
    let mut t = Table::new(
        format!(
            "{} / Fig: recording overhead, {label}",
            if spare { "E2" } else { "E3" }
        ),
        if spare {
            "expect tens of percent, growing with threads (paper avg: 15% @2t, 28% @4t)"
        } else {
            "expect roughly 2x worse than with spare cores (second execution shares CPUs)"
        },
        &["workload", "2 threads", "4 threads"],
    );
    let mut avgs = (Vec::new(), Vec::new());
    let mut rows: Vec<(String, String, String)> = Vec::new();
    for case4 in suite(4, size) {
        let name = case4.name;
        let mut cells = Vec::new();
        for (threads, case) in [(2usize, None), (4, Some(case4))] {
            let case = case.unwrap_or_else(|| {
                suite(2, size)
                    .into_iter()
                    .find(|c| c.name == name)
                    .expect("suite mismatch")
            });
            let mut config = config_for(threads);
            if !spare {
                config.spare_workers = 0;
            }
            let bundle = record(&case.spec, &config).expect("record failed");
            let o = bundle.stats.overhead();
            if threads == 2 {
                avgs.0.push(o);
            } else {
                avgs.1.push(o);
            }
            cells.push(pct(o));
        }
        rows.push((name.to_string(), cells[0].clone(), cells[1].clone()));
    }
    for (n, a, b) in rows {
        t.row(vec![n, a, b]);
    }
    t.row(vec![
        "AVERAGE".to_string(),
        pct(mean(&avgs.0)),
        pct(mean(&avgs.1)),
    ]);
    t
}

/// E4 / Table: log sizes (compressed), 4 worker threads.
pub fn table_logsize(size: Size) -> Table {
    let mut t = Table::new(
        "E4 / Table: log size, 4 worker threads",
        "schedule logs are tiny; syscall logs scale with I/O; both orders of \
         magnitude below shared-memory logging",
        &[
            "workload",
            "sched bytes",
            "syscall bytes",
            "total",
            "bytes/Mcycle",
            "sched events",
        ],
    );
    for case in suite(4, size) {
        let bundle = record(&case.spec, &config_for(4)).expect("record failed");
        let s = &bundle.stats;
        t.row(vec![
            case.name.to_string(),
            s.schedule_bytes.to_string(),
            s.syscall_bytes.to_string(),
            s.log_bytes().to_string(),
            format!("{:.0}", s.log_bytes_per_mcycle()),
            bundle.recording.schedule_events().to_string(),
        ]);
    }
    t
}

/// E5 / Table: DoublePlay vs. conventional schemes (2 worker threads).
pub fn table_baselines(size: Size) -> Table {
    let mut t = Table::new(
        "E5 / Table: vs. conventional multiprocessor record/replay (2 threads)",
        "uniprocessor RR pays ~Nx serialization; value logging pays per-access \
         instrumentation + huge logs; CREW pays fault storms under sharing; \
         DoublePlay (spare cores) avoids all three",
        &["workload", "scheme", "overhead", "log bytes", "events"],
    );
    let threads = 2;
    for name in ["pfscan", "kvstore", "ocean"] {
        let find = || {
            suite(threads, size)
                .into_iter()
                .find(|c| c.name == name)
                .expect("unknown workload")
        };
        let config = config_for(threads);
        let dp = record(&find().spec, &config).expect("doubleplay failed");
        t.row(vec![
            name.to_string(),
            "DoublePlay".to_string(),
            pct(dp.stats.overhead()),
            dp.stats.log_bytes().to_string(),
            dp.recording.schedule_events().to_string(),
        ]);
        let uni = dp_baselines::uniproc::record(&find().spec, &config).expect("uniproc failed");
        t.row(vec![
            String::new(),
            "uniprocessor".to_string(),
            pct(uni.stats.overhead()),
            uni.stats.log_bytes.to_string(),
            uni.stats.events.to_string(),
        ]);
        let vl = dp_baselines::value_log::record(&find().spec, &config).expect("value log failed");
        t.row(vec![
            String::new(),
            "value-log".to_string(),
            pct(vl.stats.overhead()),
            vl.stats.log_bytes.to_string(),
            vl.stats.events.to_string(),
        ]);
        let crew = dp_baselines::crew::record(&find().spec, &config).expect("crew failed");
        t.row(vec![
            String::new(),
            "CREW".to_string(),
            pct(crew.stats.overhead()),
            crew.stats.log_bytes.to_string(),
            crew.stats.events.to_string(),
        ]);
    }
    t
}

/// E6 / Fig: overhead vs. epoch length (pcomp + ocean, 2 threads).
pub fn fig_epoch_length(size: Size) -> Table {
    let mut t = Table::new(
        "E6 / Fig: overhead vs. epoch length (2 threads)",
        "U-shape: short epochs pay checkpoint/log costs, long epochs pay \
         pipeline ramp/tail",
        &["epoch cycles", "pcomp", "ocean"],
    );
    for epoch in [
        12_500u64, 25_000, 50_000, 100_000, 200_000, 400_000, 800_000, 1_600_000,
    ] {
        let mut cells = vec![epoch.to_string()];
        for name in ["pcomp", "ocean"] {
            let case = suite(2, size).into_iter().find(|c| c.name == name).unwrap();
            let config = config_for(2).epoch_cycles(epoch);
            let bundle = record(&case.spec, &config).expect("record failed");
            cells.push(pct(bundle.stats.overhead()));
        }
        t.row(cells);
    }
    t
}

/// E7 / Fig: offline replay speed — real wall-clock on OS threads plus a
/// modeled speedup from the per-epoch work partition (host-core-count
/// independent; wall-clock columns saturate at the host's parallelism).
pub fn fig_replay_speed(size: Size) -> Table {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut t = Table::new(
        "E7 / Fig: parallel offline replay speedup",
        format!(
            "epochs are independent given checkpoints, so replay scales with \
             replay cores; wall-clock measured on {cores} host core(s), \
             'model NxT' = critical-path speedup of N replay threads"
        ),
        &[
            "workload", "epochs", "seq ms", "wall 2t", "wall 4t", "model 2t", "model 4t",
            "model 8t",
        ],
    );
    for name in ["pcomp", "ocean", "kvstore"] {
        let case = suite(4, size).into_iter().find(|c| c.name == name).unwrap();
        let bundle = record(&case.spec, &config_for(4)).expect("record failed");
        let seq_t = {
            let t0 = Instant::now();
            replay_sequential(&bundle.recording, &case.spec.program).expect("seq replay failed");
            t0.elapsed()
        };
        let mut par = Vec::new();
        for threads in [2usize, 4] {
            let t0 = Instant::now();
            replay_parallel(&bundle.recording, &case.spec.program, threads)
                .expect("par replay failed");
            par.push(t0.elapsed());
        }
        // Modeled speedup: longest-processing-time partition of per-epoch
        // simulated replay work across N workers vs the serial sum.
        let work: Vec<u64> = bundle
            .recording
            .epochs
            .iter()
            .map(|e| e.schedule.total_instructions().max(1))
            .collect();
        let total: u64 = work.iter().sum();
        let model = |n: usize| -> f64 {
            let mut loads = vec![0u64; n];
            let mut sorted = work.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            for w in sorted {
                let idx = (0..n).min_by_key(|&i| loads[i]).unwrap();
                loads[idx] += w;
            }
            total as f64 / *loads.iter().max().unwrap() as f64
        };
        t.row(vec![
            name.to_string(),
            bundle.recording.epochs.len().to_string(),
            format!("{:.1}", seq_t.as_secs_f64() * 1e3),
            format!("{:.1}", par[0].as_secs_f64() * 1e3),
            format!("{:.1}", par[1].as_secs_f64() * 1e3),
            format!("{:.2}x", model(2)),
            format!("{:.2}x", model(4)),
            format!("{:.2}x", model(8)),
        ]);
    }
    t
}

/// E8 / Table: divergence and rollback behaviour on racy programs.
pub fn table_rollback(size: Size) -> Table {
    let mut t = Table::new(
        "E8 / Table: divergence & rollback on racy programs (2 threads)",
        "races diverge at a seed-dependent rate; recovery cost is bounded; \
         the recording still replays exactly",
        &[
            "workload",
            "epochs",
            "divergences",
            "div rate",
            "recovery cycles",
            "overhead",
            "replay ok",
        ],
    );
    for case in racy_suite(2, size) {
        let config = DoublePlayConfig {
            tp_quantum: 400,
            tp_jitter: 600,
            ..config_for(2).epoch_cycles(100_000)
        };
        let bundle = record(&case.spec, &config).expect("record failed");
        let replay_ok = replay_sequential(&bundle.recording, &case.spec.program).is_ok();
        let s = &bundle.stats;
        t.row(vec![
            case.name.to_string(),
            s.epochs.to_string(),
            s.divergences.to_string(),
            pct(s.divergences as f64 / s.epochs.max(1) as f64),
            s.recovery_cycles.to_string(),
            pct(s.overhead()),
            replay_ok.to_string(),
        ]);
    }
    t
}

/// E9 / Fig: forward recovery vs. full rollback (ablation).
pub fn fig_recovery_ablation(size: Size) -> Table {
    let mut t = Table::new(
        "E9 / Fig: forward recovery ablation (sparse racy counter, 2 threads)",
        "forward recovery (adopting the epoch-parallel state) strictly beats \
         re-running both executions",
        &[
            "seed",
            "divergences",
            "overhead (forward)",
            "overhead (full rollback)",
        ],
    );
    for seed in [1u64, 2, 3, 4] {
        let base = DoublePlayConfig {
            tp_quantum: 400,
            tp_jitter: 600,
            ..config_for(2).epoch_cycles(100_000).hidden_seed(seed)
        };
        let case = || racy_suite(2, size).remove(1); // sparse racy counter
        let fwd = record(&case().spec, &base).expect("record failed");
        let full = record(&case().spec, &base.forward_recovery(false)).expect("record failed");
        t.row(vec![
            seed.to_string(),
            fwd.stats.divergences.to_string(),
            pct(fwd.stats.overhead()),
            pct(full.stats.overhead()),
        ]);
    }
    t
}

/// E6b / Fig: adaptive epoch sizing vs fixed (racy workload).
pub fn fig_adaptive(size: Size) -> Table {
    let mut t = Table::new(
        "E6b / Fig: adaptive epoch sizing (sparse racy counter, 2 threads)",
        "shrinking epochs after divergences bounds rollback cost",
        &["mode", "divergences", "overhead"],
    );
    let case = || racy_suite(2, size).remove(1); // sparse racy counter
    let base = DoublePlayConfig {
        tp_quantum: 400,
        tp_jitter: 600,
        ..config_for(2).epoch_cycles(200_000)
    };
    let fixed = record(&case().spec, &base).expect("record failed");
    let adaptive = record(&case().spec, &base.adaptive_epochs(true)).expect("record failed");
    t.row(vec![
        "fixed".into(),
        fixed.stats.divergences.to_string(),
        pct(fixed.stats.overhead()),
    ]);
    t.row(vec![
        "adaptive".into(),
        adaptive.stats.divergences.to_string(),
        pct(adaptive.stats.overhead()),
    ]);
    t
}

/// E10 / Table: robustness under injected faults (2 threads).
///
/// For each fault class the probability `p` sweeps {0, 0.001, 0.01, 0.05}:
///
/// * **io** — syscall-level failures, short reads and connection resets
///   injected by the simulated kernel (kvstore);
/// * **panic** — epoch workers panic mid-epoch and are retried under the
///   coordinator's `catch_unwind` budget (kvstore);
/// * **storm** — windows of amplified scheduling jitter drive up the racy
///   divergence rate until the coordinator degrades to serialized
///   recording (racy counter).
///
/// Every run that completes must replay bit-exactly (final-state-hash
/// match), and every saved container must reject single-bit corruption
/// with a typed error — those are the two robustness acceptance criteria.
pub fn table_faults(size: Size) -> Table {
    dp_core::faults::silence_injected_panics();
    let mut t = Table::new(
        "E10 / Table: fault injection & recovery (2 threads)",
        "surviving recordings replay bit-exactly at every fault rate; \
         corrupted containers are rejected with a typed error in 100% of trials",
        &[
            "workload",
            "class",
            "p",
            "epochs",
            "io faults",
            "div",
            "retries",
            "serialized",
            "outcome",
            "corrupt rejects",
        ],
    );
    let find = |name: &'static str| {
        move || {
            suite(2, size)
                .into_iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        }
    };
    // webserve is the syscall-dense workload (hundreds of send/recv
    // traps), so it actually exercises the kernel fault sites; kvstore
    // is futex-dense, right for per-epoch worker panics; the racy
    // counter is the divergence-storm victim.
    let webserve = find("webserve");
    let aget = find("aget");
    let kvstore = find("kvstore");
    let racy = || racy_suite(2, size).remove(0); // dense racy counter
    for (class, case_of) in [
        ("io", &webserve as &dyn Fn() -> WorkloadCase),
        ("short", &aget),
        ("panic", &kvstore),
        ("storm", &racy),
    ] {
        for p in [0.0f64, 0.001, 0.01, 0.05] {
            let plan = match class {
                "io" => dp_core::FaultPlan::none().seed(42).io(p, p, p),
                // Short reads alone are survivable by guests that loop
                // until a transfer completes; failures/resets usually are
                // not (those rows demonstrate the graceful typed aborts).
                "short" => dp_core::FaultPlan::none().seed(42).io(0.0, p, 0.0),
                "panic" => dp_core::FaultPlan::none().seed(42).worker_panics_with(p),
                // Storm windows are one coin flip per storm_len epochs and
                // the racy guest only runs a handful; seed 6 is one whose
                // early windows fire at p >= 0.01 so the sweep shows the
                // storm -> degrade -> serialize path, not just calm rows.
                _ => dp_core::FaultPlan::none().seed(6).storms(p, 4, 64),
            };
            let case = case_of();
            // Per-class shapes: io faults only need syscalls, so long
            // epochs are fine; panics are one coin flip per epoch, so
            // short epochs give the coin enough tosses; storms need the
            // coarse-quantum/fine-recovery shape that makes the racy
            // guest verify cleanly when calm and diverge when stormed.
            let config = match class {
                "io" | "short" => DoublePlayConfig {
                    tp_quantum: 4_000,
                    tp_jitter: 2_000,
                    ..config_for(2).epoch_cycles(100_000).faults(plan)
                },
                "panic" => DoublePlayConfig {
                    tp_quantum: 4_000,
                    tp_jitter: 2_000,
                    ..config_for(2).epoch_cycles(20_000).faults(plan)
                },
                _ => DoublePlayConfig {
                    tp_quantum: 6_000,
                    tp_jitter: 2_000,
                    ..config_for(2)
                        .epoch_cycles(6_000)
                        .ep_quantum(512)
                        .hidden_seed(42)
                        .faults(plan)
                },
            };
            let (details, outcome, rejects) = match record(&case.spec, &config) {
                Ok(bundle) => {
                    let s = &bundle.stats;
                    let details = [
                        s.epochs.to_string(),
                        s.io_faults.to_string(),
                        s.divergences.to_string(),
                        s.worker_retries.to_string(),
                        s.serialized_epochs.to_string(),
                    ];
                    let expected = bundle.recording.epochs.last().map(|e| e.end_machine_hash);
                    let outcome = match replay_sequential(&bundle.recording, &case.spec.program) {
                        Ok(rep) if Some(rep.final_hash) == expected => "replayed exact",
                        Ok(_) => "REPLAY HASH MISMATCH",
                        Err(_) => "REPLAY FAILED",
                    };
                    (
                        details,
                        outcome.to_string(),
                        corruption_rejects(&bundle.recording),
                    )
                }
                Err(e) => (
                    [
                        String::new(),
                        String::new(),
                        String::new(),
                        String::new(),
                        String::new(),
                    ],
                    format!("record aborted: {e}"),
                    "-".to_string(),
                ),
            };
            let [epochs, io_faults, div, retries, serialized] = details;
            t.row(vec![
                case.name.to_string(),
                class.to_string(),
                format!("{p}"),
                epochs,
                io_faults,
                div,
                retries,
                serialized,
                outcome,
                rejects,
            ]);
        }
    }
    t
}

/// E11 / Table: offline analysis — race detection and log compaction.
///
/// Runs the `dp-analyze` subsystem over fresh recordings of the sync-heavy
/// and racy workloads: vector-clock race detection (races found, detector
/// wall-clock vs. a plain verified replay of the same recording) and
/// lossless schedule compaction (v1 vs. compact bytes, with the compacted
/// recording replayed to prove the round trip).
pub fn table_analyze(size: Size) -> Table {
    let mut t = Table::new(
        "E11 / Table: offline analysis — races & compaction (2 threads)",
        "racy workloads report races with full site info, synchronized ones \
         report none; compaction shrinks every schedule and still replays \
         to the identical final hash",
        &[
            "workload",
            "races",
            "racy pairs",
            "detect ms",
            "replay ms",
            "overhead",
            "sched bytes",
            "compact",
            "ratio",
            "replay ok",
        ],
    );
    let cases = suite(2, size)
        .into_iter()
        .chain(racy_suite(2, size))
        .filter(|c| {
            matches!(
                c.name,
                "radix" | "water" | "pfscan" | "kvstore" | "racey-counter" | "racey-bank"
            )
        });
    for case in cases {
        let config = config_for(2).epoch_cycles(100_000);
        let bundle = record(&case.spec, &config).expect("record failed");

        let t0 = Instant::now();
        let plain =
            replay_sequential(&bundle.recording, &case.spec.program).expect("replay failed");
        let replay_t = t0.elapsed();
        let t0 = Instant::now();
        let report = dp_analyze::detect_races(&bundle.recording, &case.spec.program)
            .expect("race detection failed");
        let detect_t = t0.elapsed();

        let (canonical, stats) = dp_analyze::compact(&bundle.recording);
        let compact_ok = replay_sequential(&canonical, &case.spec.program)
            .map(|r| r.final_hash == plain.final_hash)
            .unwrap_or(false);
        t.row(vec![
            case.name.to_string(),
            report.races.len().to_string(),
            report.racy_pairs.len().to_string(),
            format!("{:.1}", detect_t.as_secs_f64() * 1e3),
            format!("{:.1}", replay_t.as_secs_f64() * 1e3),
            format!(
                "{:.2}x",
                detect_t.as_secs_f64() / replay_t.as_secs_f64().max(1e-9)
            ),
            stats.schedule_bytes_before.to_string(),
            stats.schedule_bytes_after.to_string(),
            format!("{:.2}x", stats.ratio()),
            compact_ok.to_string(),
        ]);
    }
    t
}

/// E12 / Table: crash-consistent journaling & salvage (2 threads).
///
/// For each workload one reference run streams its recording through a
/// healthy `DPRJ` journal (the `none` row — also the journal-vs-`DPRC`
/// byte-overhead figure). Then the run is repeated against sinks that die
/// deterministically: torn writes at byte offsets swept across the whole
/// journal (including mid-frame cuts), `ENOSPC`, and a failed flush. Each
/// crash leaves a journal prefix; `JournalReader::salvage` must recover
/// every committed epoch as a replayable recording whose verified final
/// hash equals the reference run's hash at the same epoch — sink faults
/// never perturb the guest, so the prefixes are bit-identical.
pub fn table_journal(size: Size) -> Table {
    let mut t = Table::new(
        "E12 / Table: crash-consistent journal & salvage (2 threads)",
        "every crash offset salvages to a replayable prefix whose final \
         hash matches the reference run; a journal with >=1 committed \
         epoch is never unsalvageable",
        &[
            "workload",
            "fault",
            "at",
            "durable B",
            "committed",
            "dropped B",
            "outcome",
        ],
    );
    for case in suite(2, size)
        .into_iter()
        .filter(|c| matches!(c.name, "pfscan" | "kvstore"))
    {
        let config = config_for(2).epoch_cycles(100_000);
        // Reference run against a healthy in-memory sink.
        let mut healthy = dp_core::JournalWriter::new(Vec::new()).expect("journal preamble");
        let reference =
            dp_core::record_to(&case.spec, &config, &mut healthy).expect("reference record");
        let journal_len = healthy.bytes_written();
        let journal = healthy.into_inner();
        let mut dprc = Vec::new();
        reference.recording.save(&mut dprc).expect("save failed");
        let clean = dp_core::JournalReader::salvage(&journal).expect("clean salvage");
        t.row(vec![
            case.name.to_string(),
            "none".to_string(),
            "-".to_string(),
            journal_len.to_string(),
            format!("{}/{}", clean.committed(), reference.recording.epochs.len()),
            "0".to_string(),
            format!(
                "clean; journal {:+.3}% vs DPRC",
                (journal_len as f64 / dprc.len() as f64 - 1.0) * 100.0
            ),
        ]);

        // Crash sweep: torn writes across the journal (the early cuts land
        // inside the header frame, the rest mid-epoch or mid-commit), plus
        // one ENOSPC and one failed flush.
        let sweep: Vec<(&str, dp_core::FaultPlan)> = [2, 10, 30, 50, 70, 85, 99]
            .into_iter()
            .map(|pct| {
                (
                    "torn",
                    dp_core::FaultPlan::none().sink_torn_at(journal_len * pct / 100),
                )
            })
            .chain([
                (
                    "enospc",
                    dp_core::FaultPlan::none().sink_enospc_at(journal_len * 60 / 100),
                ),
                ("flush", dp_core::FaultPlan::none().sink_fail_flush_at(3)),
            ])
            .collect();
        for (fault, plan) in sweep {
            let mut sink = dp_core::JournalWriter::new(dp_os::FaultedSink::new(
                Vec::new(),
                plan.sink_faults(),
            ))
            .expect("journal preamble");
            let aborted = matches!(
                dp_core::record_to(&case.spec, &config, &mut sink),
                Err(dp_core::RecordError::Sink { .. })
            );
            let faulted = sink.into_inner();
            let durable = faulted.durable_bytes();
            let at = match fault {
                "flush" => "flush #3".to_string(),
                _ => format!("{durable} B"),
            };
            let outcome = if !aborted {
                "RECORD DID NOT ABORT".to_string()
            } else {
                match dp_core::JournalReader::salvage(faulted.get_ref()) {
                    Ok(s) => {
                        let k = s.committed();
                        let verified = replay_sequential(&s.recording, &case.spec.program)
                            .ok()
                            .map(|rep| {
                                k == 0
                                    || rep.final_hash
                                        == reference.recording.epochs[k - 1].end_machine_hash
                            });
                        match verified {
                            Some(true) => "salvaged exact".to_string(),
                            Some(false) => "SALVAGE HASH MISMATCH".to_string(),
                            None => "SALVAGE REPLAY FAILED".to_string(),
                        }
                    }
                    // Only a cut inside the header frame leaves nothing to
                    // salvage — no epoch was durable yet.
                    Err(_) => "header lost (0 epochs durable)".to_string(),
                }
            };
            let (committed, dropped) = match dp_core::JournalReader::salvage(faulted.get_ref()) {
                Ok(s) => (
                    format!("{}/{}", s.committed(), reference.recording.epochs.len()),
                    s.dropped_bytes.to_string(),
                ),
                Err(_) => ("0".to_string(), durable.to_string()),
            };
            t.row(vec![
                case.name.to_string(),
                fault.to_string(),
                at,
                durable.to_string(),
                committed,
                dropped,
                outcome,
            ]);
        }
    }
    t
}

/// A verify-heavy guest for the wall-clock experiments: main touches
/// `pages` distinct memory pages (one store each), making every
/// subsequent state digest walk a large resident set, then two threads
/// run a synchronized (atomic) counter loop. Verification — replay plus
/// three full digests per epoch — dominates the thread-parallel run by a
/// wide margin, which is exactly the regime where moving verify work onto
/// real spare cores pays.
pub fn verify_heavy_spec(pages: u64, iters: i64) -> dp_core::GuestSpec {
    use dp_vm::builder::ProgramBuilder;
    use dp_vm::Reg;
    let mut pb = ProgramBuilder::new();
    let counter = pb.global("counter", 8);
    let arena = pb.global("arena", pages * 4096);
    let mut w = pb.function("worker");
    let top = w.label();
    let done = w.label();
    w.consti(Reg(10), 0);
    w.consti(Reg(9), counter as i64);
    w.bind(top);
    w.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), iters);
    w.jz(Reg(11), done);
    w.fetch_add(Reg(12), Reg(9), 1i64);
    w.add(Reg(10), Reg(10), 1i64);
    w.jmp(top);
    w.bind(done);
    w.consti(Reg(0), 0);
    w.syscall(dp_os::abi::SYS_THREAD_EXIT);
    w.finish();
    let worker = pb.declare("worker");
    let mut f = pb.function("main");
    // Touch one word per page so the digest must walk `pages` pages.
    let touch_top = f.label();
    let touch_done = f.label();
    f.consti(Reg(8), arena as i64);
    f.consti(Reg(10), 0);
    f.bind(touch_top);
    f.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), pages as i64);
    f.jz(Reg(11), touch_done);
    f.store(Reg(10), Reg(8), 0, dp_vm::Width::W8);
    f.add(Reg(8), Reg(8), 4096i64);
    f.add(Reg(10), Reg(10), 1i64);
    f.jmp(touch_top);
    f.bind(touch_done);
    for _ in 0..2 {
        f.consti(Reg(0), worker.0 as i64);
        f.consti(Reg(1), 0);
        f.consti(Reg(2), 0);
        f.syscall(dp_os::abi::SYS_SPAWN);
    }
    for t in 1..=2i64 {
        f.consti(Reg(0), t);
        f.syscall(dp_os::abi::SYS_JOIN);
    }
    f.consti(Reg(9), counter as i64);
    f.load(Reg(0), Reg(9), 0, dp_vm::Width::W8);
    f.syscall(dp_os::abi::SYS_EXIT);
    f.finish();
    dp_core::GuestSpec::new(
        "verify-heavy",
        std::sync::Arc::new(pb.finish("main")),
        dp_os::kernel::WorldConfig::default(),
    )
}

/// The E13 recorder configuration: small epochs over a large resident set
/// keep the per-epoch digest (verify-side) cost far above the
/// thread-parallel cost, and per-epoch checkpoints are not retained so the
/// commit stage stays light.
pub fn wallclock_config(workers: usize) -> DoublePlayConfig {
    DoublePlayConfig::new(2)
        .epoch_cycles(6_000)
        .spare_workers(workers)
        .keep_checkpoints(false)
}

/// E13 / Table: real wall-clock uniparallelism — sequential recording vs
/// the multithreaded pipeline at 1, 2 and 4 spare verify workers.
///
/// For each worker count the same guest records twice: once with the
/// lockstep sequential driver, once with `pipelined(true)` (TP front-end
/// speculating ahead, verify workers on real OS threads, in-order commit).
/// The `identical` column asserts the contract that makes the pipeline
/// safe to ship: byte-identical recordings and equal modeled stats. On a
/// host with enough free cores, wall time strictly drops as workers are
/// added (the verify-heavy workload leaves the front-end waiting on
/// digests otherwise); on a starved host the speedup column degrades
/// toward 1.0x but identity still holds.
pub fn table_wallclock(size: Size) -> Table {
    let mut t = Table::new(
        "E13 / Table: wall-clock uniparallelism (2 guest CPUs, verify-heavy)",
        "pipelined wall time should fall as spare workers grow (>=1.5x at 4 \
         workers on an idle multicore host); recordings must stay \
         byte-identical to the sequential driver at every worker count",
        &[
            "workers",
            "seq wall",
            "pipelined wall",
            "speedup",
            "util",
            "depth p50",
            "cancelled",
            "identical",
        ],
    );
    let pages = 192 * size.factor();
    let iters = (1_500 * size.factor()) as i64;
    let spec = verify_heavy_spec(pages, iters);
    for workers in [1usize, 2, 4] {
        let config = wallclock_config(workers);
        let seq = record(&spec, &config.pipelined(false)).expect("sequential record");
        let pip = record(&spec, &config.pipelined(true)).expect("pipelined record");
        let mut seq_bytes = Vec::new();
        let mut pip_bytes = Vec::new();
        seq.recording.save(&mut seq_bytes).expect("save failed");
        pip.recording.save(&mut pip_bytes).expect("save failed");
        let identical = seq_bytes == pip_bytes && seq.stats == pip.stats;
        assert!(
            identical,
            "pipelined recording diverged from sequential at {workers} workers"
        );
        let seq_ms = seq.stats.wall.wall_ns as f64 / 1e6;
        let pip_ms = pip.stats.wall.wall_ns as f64 / 1e6;
        let w = &pip.stats.wall;
        // Median submit-time speculation depth from the histogram.
        let total: u64 = w.depth_histogram.iter().sum();
        let mut seen = 0u64;
        let p50 = w
            .depth_histogram
            .iter()
            .position(|&n| {
                seen += n;
                seen * 2 >= total
            })
            .unwrap_or(0);
        t.row(vec![
            workers.to_string(),
            format!("{seq_ms:.1} ms"),
            format!("{pip_ms:.1} ms"),
            format!("{:.2}x", seq_ms / pip_ms.max(1e-9)),
            pct(w.utilization()),
            p50.to_string(),
            w.cancelled_epochs.to_string(),
            "yes".to_string(),
        ]);
    }
    t
}

/// Saves `recording`, flips one deterministic bit per trial, and counts how
/// many corrupted images `Recording::load` rejects with the typed
/// `ReplayError::Corrupt` (anything else would violate the acceptance
/// criterion, so the cell makes it visible).
fn corruption_rejects(recording: &dp_core::Recording) -> String {
    const TRIALS: usize = 16;
    let mut saved = Vec::new();
    recording.save(&mut saved).expect("save failed");
    let mut rng = dp_support::rng::SplitMix64::new(0xe10);
    let mut rejected = 0usize;
    for _ in 0..TRIALS {
        let mut bad = saved.clone();
        let i = (rng.next_u64() % bad.len() as u64) as usize;
        bad[i] ^= 1 << (rng.next_u64() % 8);
        if matches!(
            dp_core::Recording::load(&bad[..]),
            Err(dp_core::ReplayError::Corrupt { .. })
        ) {
            rejected += 1;
        }
    }
    format!("{rejected}/{TRIALS}")
}

/// One measured run of the `dpd` multi-session service: the raw material
/// shared by the E14 table and the machine-readable `BENCH_6.json`, so the
/// two views always describe the same run.
pub struct ServiceRun {
    /// Suite size the run was scaled from.
    pub size: Size,
    /// Sessions submitted.
    pub sessions: usize,
    /// Wall time from first submit to full drain.
    pub wall: std::time::Duration,
    /// Final daemon counters.
    pub metrics: dp_dpd::DaemonMetrics,
    /// Final registry rows, one per session.
    pub reports: Vec<dp_dpd::SessionReport>,
}

/// E14 — drive the `dpd` service with a fault-class mix: clean sessions,
/// injected record faults (storms + occasional worker panics), transient
/// sink faults (fail, then retry clean), and permanent sink faults with no
/// restart budget (salvage-only). Sessions alternate drivers and cycle
/// priority lanes; the queue is kept small so backpressure is exercised.
pub fn service_run(size: Size) -> ServiceRun {
    use dp_core::FaultPlan;
    use dp_dpd::{guests, Daemon, DaemonConfig, MemStore, Priority, SessionSpec};
    use dp_os::SinkFaults;
    use std::sync::Arc;

    dp_core::faults::silence_injected_panics();
    let sessions = (64 * size.factor() as usize).min(512);
    let store = Arc::new(MemStore::new());
    let daemon = Daemon::start(
        DaemonConfig {
            runners: 4,
            verify_cores: 4,
            queue_capacity: 16,
            ..DaemonConfig::default()
        },
        store,
    );
    let started = Instant::now();
    for i in 0..sessions {
        let guest = if i % 2 == 1 {
            guests::racy_counter(2, 300 + (i % 5) as i64 * 60)
        } else {
            guests::atomic_counter(2, 300 + (i % 5) as i64 * 60)
        };
        let mut config = DoublePlayConfig::new(2)
            .epoch_cycles(800)
            .hidden_seed(dp_support::rng::mix(&[i as u64, 0xe14]));
        if i.is_multiple_of(2) {
            config = config.spare_workers(2).pipelined(true);
        }
        let class = i % 4;
        if class == 1 {
            let template = FaultPlan::none()
                .seed(0xe14)
                .io(0.0, 0.01, 0.0)
                .storms(0.05, 3, 16);
            config = config.faults(template.for_session(i as u64));
        }
        let mut spec = SessionSpec::new(format!("{}-{i}", CLASS_NAMES[class]), guest, config)
            .priority(match i % 3 {
                0 => Priority::High,
                1 => Priority::Normal,
                _ => Priority::Low,
            })
            .restart_budget(2);
        // Sink-fault classes fail on the second flush-after-commit: for
        // the transient class the retry then finalizes; the permanent
        // class has no budget, so it salvages its committed prefix.
        if class == 2 {
            spec = spec
                .sink_faults(SinkFaults {
                    fail_flush_at: Some(2),
                    ..SinkFaults::none()
                })
                .transient_sink_faults(true);
        } else if class == 3 {
            spec = spec
                .sink_faults(SinkFaults {
                    fail_flush_at: Some(2),
                    ..SinkFaults::none()
                })
                .restart_budget(0);
        }
        daemon
            .submit_retrying(spec, 100_000)
            .expect("polite submission must land");
    }
    daemon.drain();
    let wall = started.elapsed();
    let metrics = daemon.metrics();
    let reports = daemon.sessions();
    daemon.shutdown();
    ServiceRun {
        size,
        sessions,
        wall,
        metrics,
        reports,
    }
}

const CLASS_NAMES: [&str; 4] = ["clean", "recfault", "transink", "permsink"];

/// E14 / Table: the multi-session service under mixed faulty load.
pub fn table_service(run: &ServiceRun) -> Table {
    use dp_dpd::SessionState;
    let mut t = Table::new(
        "E14 / Table: multi-session service (dpd), mixed fault classes",
        "clean+transient-sink classes must all finalize (transient after a \
         retry); permanent-sink sessions all salvage; faults never leak \
         across sessions; a small queue sheds typed rejections",
        &[
            "class",
            "sessions",
            "finalized",
            "salvaged",
            "failed",
            "avg attempts",
            "epochs",
        ],
    );
    for (class, name) in CLASS_NAMES.iter().enumerate() {
        let rows: Vec<_> = run
            .reports
            .iter()
            .filter(|r| r.name.starts_with(name))
            .collect();
        let count = |s: SessionState| rows.iter().filter(|r| r.state == s).count();
        let attempts: u32 = rows.iter().map(|r| r.attempts).sum();
        let epochs: u64 = rows.iter().map(|r| u64::from(r.epochs)).sum();
        t.row(vec![
            CLASS_NAMES[class].to_string(),
            rows.len().to_string(),
            count(SessionState::Finalized).to_string(),
            count(SessionState::Salvaged).to_string(),
            count(SessionState::Failed).to_string(),
            format!("{:.2}", attempts as f64 / rows.len().max(1) as f64),
            epochs.to_string(),
        ]);
    }
    let m = &run.metrics;
    t.row(vec![
        "TOTAL".to_string(),
        run.sessions.to_string(),
        m.finalized.to_string(),
        m.salvaged.to_string(),
        m.failed.to_string(),
        format!(
            "{:.1}/s, p99 adm {:.2}ms",
            run.sessions as f64 / run.wall.as_secs_f64(),
            m.admission_p99_ns as f64 / 1e6
        ),
        m.epochs_committed.to_string(),
    ]);
    t
}

/// The machine-readable perf record for the service experiment
/// (`BENCH_6.json`): service throughput, epoch throughput, admission
/// latency, and the terminal-state counters. Hand-rolled JSON — the
/// workspace has no serializer dependency, and the schema is flat.
pub fn bench6_json(run: &ServiceRun) -> String {
    let m = &run.metrics;
    let secs = run.wall.as_secs_f64();
    format!(
        concat!(
            "{{\n",
            "  \"bench\": 6,\n",
            "  \"name\": \"dpd-service\",\n",
            "  \"size\": \"{size}\",\n",
            "  \"sessions\": {sessions},\n",
            "  \"finalized\": {finalized},\n",
            "  \"salvaged\": {salvaged},\n",
            "  \"failed\": {failed},\n",
            "  \"rejected\": {rejected},\n",
            "  \"degraded_runs\": {degraded},\n",
            "  \"retries\": {retries},\n",
            "  \"wall_ms\": {wall_ms:.1},\n",
            "  \"sessions_per_sec\": {sps:.2},\n",
            "  \"epochs_committed\": {epochs},\n",
            "  \"epochs_per_sec\": {eps:.1},\n",
            "  \"admission_p50_ns\": {p50},\n",
            "  \"admission_p99_ns\": {p99}\n",
            "}}\n"
        ),
        size = run.size,
        sessions = run.sessions,
        finalized = m.finalized,
        salvaged = m.salvaged,
        failed = m.failed,
        rejected = m.rejected,
        degraded = m.degraded_runs,
        retries = m.retries,
        wall_ms = secs * 1e3,
        sps = run.sessions as f64 / secs,
        epochs = m.epochs_committed,
        eps = m.epochs_committed as f64 / secs,
        p50 = m.admission_p50_ns,
        p99 = m.admission_p99_ns,
    )
}

/// A durable sink with a modelled fsync: every `flush()` sleeps for
/// [`FLUSH_COST`], counts itself, and — when it runs on the thread that
/// drives the recording — bills the sleep as *commit-stage stall*. The
/// single-stream journal and sync-mode shard lanes flush on the record
/// thread; threaded shard lanes flush on their own threads, so their
/// fsync cost leaves the commit stage entirely.
struct SlowSink {
    buf: Vec<u8>,
    record_thread: std::thread::ThreadId,
    flushes: std::sync::Arc<std::sync::atomic::AtomicU64>,
    stall_ns: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

/// The modelled fsync latency of [`SlowSink`] (per flush).
const FLUSH_COST: std::time::Duration = std::time::Duration::from_micros(400);

impl std::io::Write for SlowSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        use std::sync::atomic::Ordering;
        std::thread::sleep(FLUSH_COST);
        self.flushes.fetch_add(1, Ordering::SeqCst);
        if std::thread::current().id() == self.record_thread {
            self.stall_ns
                .fetch_add(FLUSH_COST.as_nanos() as u64, Ordering::SeqCst);
        }
        Ok(())
    }
}

/// One measured journaling configuration of E15.
pub struct ShardRow {
    /// Display label (`single`, `shard x4 sync`, ...).
    pub mode: &'static str,
    /// Shard streams (1 = classic single-stream `DPRJ`).
    pub shards: u32,
    /// Group-commit batch (epochs per shard between flushes).
    pub batch: u32,
    /// Total `flush()` calls across the mode's sinks.
    pub flushes: u64,
    /// Total journal bytes across the mode's sinks.
    pub bytes: u64,
    /// Modelled fsync time spent blocking the record thread, ms.
    pub commit_stall_ms: f64,
    /// Record wall time including lane join, ms.
    pub wall_ms: f64,
}

/// One measured run of the sharded-journaling experiment: the raw
/// material shared by the E15 table and `BENCH_7.json`.
pub struct ShardRun {
    /// Suite size the run was scaled from.
    pub size: Size,
    /// The recorded workload.
    pub workload: String,
    /// Epochs committed (identical across modes by construction).
    pub epochs: u64,
    /// One row per journaling configuration.
    pub rows: Vec<ShardRow>,
    /// True when every sharded mode's merged recording is byte-identical
    /// to the single-stream run's recording.
    pub merged_identical: bool,
}

/// E15 — sharded parallel journaling vs the single-stream journal at
/// equal epochs: same workload, same seed, four durability layouts. The
/// flush count drops by roughly the group-commit batch; threaded lanes
/// additionally move the remaining fsync cost off the commit stage. Every
/// sharded stream set must merge byte-identical to the single-stream
/// recording.
pub fn shard_run(size: Size) -> ShardRun {
    use dp_core::{JournalReader, JournalWriter, ShardedJournalWriter, DEFAULT_SHARD_BATCH};
    let case = suite(2, size)
        .into_iter()
        .find(|c| c.name == "pfscan")
        .expect("pfscan in suite");
    let config = config_for(2).epoch_cycles(100_000);
    let record_thread = std::thread::current().id();
    let make_sinks = |n: u32| -> (
        Vec<SlowSink>,
        std::sync::Arc<std::sync::atomic::AtomicU64>,
        std::sync::Arc<std::sync::atomic::AtomicU64>,
    ) {
        let flushes = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let stall = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let sinks = (0..n)
            .map(|_| SlowSink {
                buf: Vec::new(),
                record_thread,
                flushes: flushes.clone(),
                stall_ns: stall.clone(),
            })
            .collect();
        (sinks, flushes, stall)
    };

    let mut rows = Vec::new();
    let mut merged_identical = true;

    // Mode 1: the classic single-stream journal (flush per commit).
    let (epochs, reference) = {
        let (mut sinks, flushes, stall) = make_sinks(1);
        let mut w = JournalWriter::new(sinks.remove(0)).expect("journal preamble");
        let started = Instant::now();
        let bundle = dp_core::record_to(&case.spec, &config, &mut w).expect("single record");
        let wall = started.elapsed();
        let sink = w.into_inner();
        let mut dprc = Vec::new();
        bundle.recording.save(&mut dprc).expect("save");
        rows.push(ShardRow {
            mode: "single",
            shards: 1,
            batch: 1,
            flushes: flushes.load(std::sync::atomic::Ordering::SeqCst),
            bytes: sink.buf.len() as u64,
            commit_stall_ms: stall.load(std::sync::atomic::Ordering::SeqCst) as f64 / 1e6,
            wall_ms: wall.as_secs_f64() * 1e3,
        });
        (bundle.stats.epochs, dprc)
    };

    // Modes 2..: sharded layouts, sync lanes then threaded lanes.
    let layouts: [(&'static str, u32, bool); 3] = [
        ("shard x2 sync", 2, false),
        ("shard x4 sync", 4, false),
        ("shard x4 lanes", 4, true),
    ];
    for (mode, shards, threaded) in layouts {
        let (sinks, flushes, stall) = make_sinks(shards);
        let mut w = if threaded {
            ShardedJournalWriter::threaded(sinks, DEFAULT_SHARD_BATCH)
        } else {
            ShardedJournalWriter::new(sinks, DEFAULT_SHARD_BATCH)
        }
        .expect("shard preamble");
        let started = Instant::now();
        let bundle = dp_core::record_to(&case.spec, &config, &mut w).expect("sharded record");
        let lanes = w.into_writers().expect("lane join");
        let wall = started.elapsed();
        assert_eq!(
            bundle.stats.epochs, epochs,
            "modes must commit equal epochs"
        );
        let streams: Vec<Vec<u8>> = lanes.into_iter().map(|s| s.buf).collect();
        let merged = JournalReader::salvage_shards(&streams).expect("merge");
        let mut dprc = Vec::new();
        merged.recording.save(&mut dprc).expect("save");
        merged_identical &= merged.clean && dprc == reference;
        rows.push(ShardRow {
            mode,
            shards,
            batch: DEFAULT_SHARD_BATCH,
            flushes: flushes.load(std::sync::atomic::Ordering::SeqCst),
            bytes: streams.iter().map(|s| s.len() as u64).sum(),
            commit_stall_ms: stall.load(std::sync::atomic::Ordering::SeqCst) as f64 / 1e6,
            wall_ms: wall.as_secs_f64() * 1e3,
        });
    }

    ShardRun {
        size,
        workload: case.name.to_string(),
        epochs,
        rows,
        merged_identical,
    }
}

/// E15 / Table: sharded journaling flush amortization & commit-stage
/// stall.
pub fn table_shards(run: &ShardRun) -> Table {
    let mut t = Table::new(
        "E15 / Table: sharded parallel journaling (2 threads, equal epochs)",
        "every sharded layout must flush strictly less often than the \
         single stream at the same epoch count, merge byte-identical to \
         its recording, and (threaded lanes) move the modelled fsync \
         stall off the commit stage",
        &[
            "layout",
            "shards",
            "batch",
            "epochs",
            "flushes",
            "journal B",
            "commit stall ms",
            "wall ms",
        ],
    );
    let single_flushes = run.rows.first().map_or(0, |r| r.flushes);
    for r in &run.rows {
        let note = if r.shards == 1 {
            String::new()
        } else if r.flushes < single_flushes {
            format!(" ({:.1}x fewer)", single_flushes as f64 / r.flushes as f64)
        } else {
            " (NO REDUCTION)".to_string()
        };
        t.row(vec![
            r.mode.to_string(),
            r.shards.to_string(),
            r.batch.to_string(),
            run.epochs.to_string(),
            format!("{}{note}", r.flushes),
            r.bytes.to_string(),
            format!("{:.2}", r.commit_stall_ms),
            format!("{:.1}", r.wall_ms),
        ]);
    }
    t.row(vec![
        "MERGE".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        if run.merged_identical {
            "byte-identical to single-stream recording".to_string()
        } else {
            "MERGE DIVERGED".to_string()
        },
    ]);
    t
}

/// The machine-readable perf record for the sharded-journaling
/// experiment (`BENCH_7.json`): per-layout flush counts, commit-stage
/// stall, and the flush-reduction factor of the widest sharded layout
/// vs the single stream. Hand-rolled JSON, same as `BENCH_6.json`.
pub fn bench7_json(run: &ShardRun) -> String {
    let single = run.rows.first().expect("single row");
    let widest = run
        .rows
        .iter()
        .filter(|r| r.shards > 1)
        .max_by_key(|r| r.shards)
        .expect("sharded row");
    let rows: Vec<String> = run
        .rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"mode\": \"{mode}\", \"shards\": {shards}, ",
                    "\"batch\": {batch}, \"flushes\": {flushes}, ",
                    "\"bytes\": {bytes}, \"commit_stall_ms\": {stall:.3}, ",
                    "\"wall_ms\": {wall:.1}}}"
                ),
                mode = r.mode,
                shards = r.shards,
                batch = r.batch,
                flushes = r.flushes,
                bytes = r.bytes,
                stall = r.commit_stall_ms,
                wall = r.wall_ms,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"bench\": 7,\n",
            "  \"name\": \"sharded-journal\",\n",
            "  \"size\": \"{size}\",\n",
            "  \"workload\": \"{workload}\",\n",
            "  \"epochs\": {epochs},\n",
            "  \"flush_cost_us\": {flush_cost},\n",
            "  \"merged_identical\": {identical},\n",
            "  \"single_flushes\": {single_flushes},\n",
            "  \"sharded_flushes\": {sharded_flushes},\n",
            "  \"flush_reduction\": {reduction:.2},\n",
            "  \"single_commit_stall_ms\": {single_stall:.3},\n",
            "  \"sharded_commit_stall_ms\": {sharded_stall:.3},\n",
            "  \"rows\": [\n{rows}\n  ]\n",
            "}}\n"
        ),
        size = run.size,
        workload = run.workload,
        epochs = run.epochs,
        flush_cost = FLUSH_COST.as_micros(),
        identical = run.merged_identical,
        single_flushes = single.flushes,
        sharded_flushes = widest.flushes,
        reduction = single.flushes as f64 / widest.flushes.max(1) as f64,
        single_stall = single.commit_stall_ms,
        sharded_stall = widest.commit_stall_ms,
        rows = rows.join(",\n"),
    )
}

/// One measured run of the out-of-process `dpnet` service: the raw
/// material shared by the E16 table and `BENCH_8.json`.
pub struct DpnetRun {
    /// Suite size the run was scaled from.
    pub size: Size,
    /// Sessions submitted over the socket.
    pub sessions: usize,
    /// Concurrent client connections driving the load.
    pub clients: usize,
    /// Wall time from first submit to the last terminal report.
    pub wall: std::time::Duration,
    /// Sorted round-trip latencies of *successful* submits, ns (rejected
    /// attempts are excluded — they are counted in `metrics.rejected`).
    pub submit_ns: Vec<u64>,
    /// Sorted round-trip latencies of status calls, ns.
    pub status_ns: Vec<u64>,
    /// Attach stream frames (chunks) received across all sessions.
    pub attach_frames: u64,
    /// Attach stream bytes received across all sessions.
    pub attach_bytes: u64,
    /// Wall time spent attach-streaming every journal back out.
    pub attach_wall: std::time::Duration,
    /// Sessions whose attached bytes matched the daemon's durable copy.
    pub identical: usize,
    /// Final daemon counters.
    pub metrics: dp_dpd::DaemonMetrics,
}

/// Nearest-rank percentile of an ascending-sorted latency series.
fn nearest_rank(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let k = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[k.saturating_sub(1).min(sorted.len() - 1)]
}

/// E16 — drive the daemon through the `dpnet` socket protocol the way an
/// external supervisor would: several client connections submit a mixed
/// (clean / pipelined / storm-perturbed) session stream against a small
/// admission queue, poll status, and finally attach-stream every journal
/// back out, checking each against the daemon's durable copy.
pub fn dpnet_run(size: Size) -> DpnetRun {
    use dp_core::FaultPlan;
    use dp_dpd::{
        serve, Client, ClientError, Daemon, DaemonConfig, GuestRef, MemStore, Priority,
        ServerConfig, SessionStore, SubmitSpec, WireFault,
    };
    use std::sync::{Arc, Mutex};

    let sessions = (16 * size.factor() as usize).min(96);
    let clients = 3usize.min(sessions);
    let daemon = Arc::new(Daemon::start(
        DaemonConfig {
            runners: 4,
            verify_cores: 4,
            queue_capacity: 16,
            ..DaemonConfig::default()
        },
        Arc::new(MemStore::new()),
    ));
    // Unix socket paths have a ~100-byte limit, so the system temp dir —
    // not target/ — hosts the endpoint.
    let path = std::env::temp_dir().join(format!("dpnet-e16-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = {
        let d = daemon.clone();
        let p = path.clone();
        std::thread::spawn(move || serve(&d, &p, ServerConfig::default()))
    };
    while !path.exists() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    let spec_for = |i: usize| -> SubmitSpec {
        let guest = if i % 2 == 1 {
            GuestRef::RacyCounter {
                workers: 2,
                iters: 300 + (i % 5) as i64 * 60,
            }
        } else {
            GuestRef::AtomicCounter {
                workers: 2,
                iters: 300 + (i % 5) as i64 * 60,
            }
        };
        let mut config = DoublePlayConfig::new(2)
            .epoch_cycles(800)
            .hidden_seed(dp_support::rng::mix(&[i as u64, 0xe16]));
        if i.is_multiple_of(2) {
            config = config.spare_workers(2).pipelined(true);
        }
        if i % 4 == 1 {
            config = config.faults(FaultPlan::none().seed(0xe16).storms(0.05, 3, 16));
        }
        let mut spec = SubmitSpec::new(format!("net-{i}"), guest, config);
        spec.priority = match i % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        spec
    };

    let submit_ns = Mutex::new(Vec::new());
    let status_ns = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let (submit_ns, status_ns, path, spec_for) = (&submit_ns, &status_ns, &path, &spec_for);
            s.spawn(move || {
                let mut conn = Client::connect(path).expect("connect");
                let mut ids = Vec::new();
                for i in (c..sessions).step_by(clients) {
                    let spec = spec_for(i);
                    // Time each round trip individually so the percentiles
                    // measure the protocol, not the backoff sleeps; shed
                    // attempts land in `metrics.rejected`.
                    loop {
                        let t = Instant::now();
                        match conn.submit(&spec) {
                            Ok(id) => {
                                submit_ns
                                    .lock()
                                    .unwrap()
                                    .push(t.elapsed().as_nanos() as u64);
                                ids.push(id);
                                break;
                            }
                            Err(ClientError::Fault(WireFault::Rejected {
                                retry_after_ms, ..
                            })) => std::thread::sleep(std::time::Duration::from_millis(
                                retry_after_ms.clamp(1, 10),
                            )),
                            Err(e) => panic!("submission failed: {e}"),
                        }
                    }
                }
                for id in ids {
                    let t = Instant::now();
                    conn.status(id).expect("status");
                    status_ns
                        .lock()
                        .unwrap()
                        .push(t.elapsed().as_nanos() as u64);
                    conn.wait(id).expect("wait");
                }
            });
        }
    });
    let wall = started.elapsed();

    // Attach-stream every journal back out over one connection and check
    // it byte-for-byte against the daemon's durable copy.
    let mut conn = Client::connect(&path).expect("connect for attach");
    let (rows, _) = conn.sessions().expect("sessions");
    let attach_started = Instant::now();
    let (mut frames, mut bytes, mut identical) = (0u64, 0u64, 0usize);
    for row in &rows {
        let mut streamed = Vec::new();
        let outcome = conn.attach(row.id, &mut streamed).expect("attach");
        frames += outcome.chunks;
        bytes += outcome.bytes;
        if daemon
            .store()
            .durable(row.id)
            .map(|durable| durable == streamed)
            .unwrap_or(false)
        {
            identical += 1;
        }
    }
    let attach_wall = attach_started.elapsed();
    conn.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("serve");

    let metrics = daemon.metrics();
    match Arc::try_unwrap(daemon) {
        Ok(d) => d.shutdown(),
        Err(_) => unreachable!("server joined; no other daemon handles remain"),
    }
    let mut submit_ns = submit_ns.into_inner().expect("lock");
    let mut status_ns = status_ns.into_inner().expect("lock");
    submit_ns.sort_unstable();
    status_ns.sort_unstable();
    DpnetRun {
        size,
        sessions,
        clients,
        wall,
        submit_ns,
        status_ns,
        attach_frames: frames,
        attach_bytes: bytes,
        attach_wall,
        identical,
        metrics,
    }
}

/// E16 / Table: the out-of-process service driven over its unix socket.
pub fn table_dpnet(run: &DpnetRun) -> Table {
    let mut t = Table::new(
        "E16 / Table: out-of-process service (dpnet) over a unix socket",
        "every socket-submitted journal must attach-stream back byte-identical \
         to the daemon's durable copy; round trips stay small and the tight \
         queue sheds typed rejections instead of stalling clients",
        &["metric", "value"],
    );
    let m = &run.metrics;
    let secs = run.wall.as_secs_f64();
    let attach_secs = run.attach_wall.as_secs_f64().max(1e-9);
    let us = |ns: u64| format!("{:.1} us", ns as f64 / 1e3);
    t.row(vec![
        "sessions / clients".into(),
        format!("{} / {}", run.sessions, run.clients),
    ]);
    t.row(vec![
        "submissions/s".into(),
        format!("{:.1}", run.sessions as f64 / secs),
    ]);
    t.row(vec![
        "submit rtt p50 / p99".into(),
        format!(
            "{} / {}",
            us(nearest_rank(&run.submit_ns, 50.0)),
            us(nearest_rank(&run.submit_ns, 99.0))
        ),
    ]);
    t.row(vec![
        "status rtt p50 / p99".into(),
        format!(
            "{} / {}",
            us(nearest_rank(&run.status_ns, 50.0)),
            us(nearest_rank(&run.status_ns, 99.0))
        ),
    ]);
    t.row(vec![
        "attach frames (frames/s)".into(),
        format!(
            "{} ({:.0}/s)",
            run.attach_frames,
            run.attach_frames as f64 / attach_secs
        ),
    ]);
    t.row(vec![
        "attach stream".into(),
        format!(
            "{:.1} MiB at {:.1} MiB/s",
            run.attach_bytes as f64 / (1 << 20) as f64,
            run.attach_bytes as f64 / (1 << 20) as f64 / attach_secs
        ),
    ]);
    t.row(vec![
        "byte-identical journals".into(),
        format!("{}/{}", run.identical, run.sessions),
    ]);
    t.row(vec![
        "finalized / rejected".into(),
        format!("{} / {}", m.finalized, m.rejected),
    ]);
    t
}

/// The machine-readable perf record for the socket-service experiment
/// (`BENCH_8.json`): submission throughput, socket round-trip latency
/// percentiles, and attach-stream throughput. Hand-rolled JSON, same as
/// `BENCH_6.json`.
pub fn bench8_json(run: &DpnetRun) -> String {
    let m = &run.metrics;
    let secs = run.wall.as_secs_f64();
    let attach_secs = run.attach_wall.as_secs_f64().max(1e-9);
    format!(
        concat!(
            "{{\n",
            "  \"bench\": 8,\n",
            "  \"name\": \"dpnet-socket\",\n",
            "  \"size\": \"{size}\",\n",
            "  \"sessions\": {sessions},\n",
            "  \"clients\": {clients},\n",
            "  \"finalized\": {finalized},\n",
            "  \"rejected\": {rejected},\n",
            "  \"wall_ms\": {wall_ms:.1},\n",
            "  \"submissions_per_sec\": {sps:.2},\n",
            "  \"submit_rtt_p50_ns\": {sub50},\n",
            "  \"submit_rtt_p99_ns\": {sub99},\n",
            "  \"status_rtt_p50_ns\": {st50},\n",
            "  \"status_rtt_p99_ns\": {st99},\n",
            "  \"attach_frames\": {frames},\n",
            "  \"attach_frames_per_sec\": {fps:.1},\n",
            "  \"attach_bytes\": {bytes},\n",
            "  \"attach_mib_per_sec\": {mibps:.2},\n",
            "  \"byte_identical\": {identical}\n",
            "}}\n"
        ),
        size = run.size,
        sessions = run.sessions,
        clients = run.clients,
        finalized = m.finalized,
        rejected = m.rejected,
        wall_ms = secs * 1e3,
        sps = run.sessions as f64 / secs,
        sub50 = nearest_rank(&run.submit_ns, 50.0),
        sub99 = nearest_rank(&run.submit_ns, 99.0),
        st50 = nearest_rank(&run.status_ns, 50.0),
        st99 = nearest_rank(&run.status_ns, 99.0),
        frames = run.attach_frames,
        fps = run.attach_frames as f64 / attach_secs,
        bytes = run.attach_bytes,
        mibps = run.attach_bytes as f64 / (1 << 20) as f64 / attach_secs,
        identical = run.identical,
    )
}

/// One crash-resume measurement: a session torn mid-epoch at a known
/// point, salvaged by the daemon, then resumed to completion — against
/// the restart-from-zero baseline of re-recording the whole run.
pub struct ResumeRow {
    /// Fraction of the run's epochs committed before the tear.
    pub crash_frac: f64,
    /// Committed epochs at the crash point (= the re-enacted prefix,
    /// whose verify passes the resume skips).
    pub from_epoch: u32,
    /// Durable journal bytes the resume preserves instead of rewriting
    /// — the flushed work a restart-from-zero would throw away.
    pub preserved_bytes: u64,
    /// Wall time from `resume()` accepted to the session terminal.
    pub resume_wall: std::time::Duration,
    /// The resumed journal is byte-identical to the uninterrupted oracle.
    pub identical: bool,
}

/// The raw material shared by the E17 table and `BENCH_9.json`.
pub struct ResumeRun {
    /// Suite size the run was scaled from.
    pub size: Size,
    /// Epochs of the complete (uninterrupted) run.
    pub total_epochs: u32,
    /// Bytes of the complete journal.
    pub total_bytes: u64,
    /// Wall time of recording the whole session from zero — what a
    /// resume-less daemon would have to spend after the same crash.
    pub restart_wall: std::time::Duration,
    /// One row per crash point, earliest crash first.
    pub rows: Vec<ResumeRow>,
}

/// E17 — end-to-end crash-resume. One session's sink tears mid-epoch at
/// 25%, 50%, and 75% of its epochs (the daemon-crash model: the
/// unflushed bytes are gone, the device is fine); the daemon salvages
/// the committed prefix, `resume()` re-enacts it deterministically and
/// continues recording live. Each resume is timed against re-recording
/// the whole run from zero, and every resumed journal is checked
/// byte-for-byte against the uninterrupted oracle.
pub fn resume_run(size: Size) -> ResumeRun {
    use dp_core::{record_to, CheckpointImage, EpochRecord, JournalWriter, RecordSink};
    use dp_dpd::{guests, Daemon, DaemonConfig, MemStore, SessionSpec, SessionState, SessionStore};
    use std::sync::Arc;

    // A tiny parameter-named guest: the daemon reconstructs it from the
    // journal's metadata by parsing the name (same path an adopted
    // session takes), which keeps guest resolution out of the timed
    // resume — suite workloads would charge the resume with rebuilding
    // workload input corpora during the resolution sweep.
    let iters = (800 * size.factor() as i64).min(9_600);
    let config = DoublePlayConfig::new(2).epoch_cycles(800);
    let base = SessionSpec::new(
        format!("resume-2x{iters}"),
        guests::atomic_counter(2, iters),
        config,
    )
    .restart_budget(0)
    .transient_sink_faults(true);

    // Solo oracle: the uninterrupted journal bytes and each epoch's
    // commit offset (the legal tear points), timed as the
    // restart-from-zero baseline.
    struct Tap {
        w: JournalWriter<Vec<u8>>,
        offsets: Vec<u64>,
    }
    impl RecordSink for Tap {
        fn begin(
            &mut self,
            meta: &dp_core::RecordingMeta,
            initial: &CheckpointImage,
        ) -> std::io::Result<()> {
            self.w.begin(meta, initial)
        }
        fn epoch(&mut self, e: &EpochRecord) -> std::io::Result<()> {
            self.w.epoch(e)?;
            self.offsets.push(self.w.bytes_written());
            Ok(())
        }
        fn finish(&mut self) -> std::io::Result<()> {
            self.w.finish()
        }
    }
    let mut tap = Tap {
        w: JournalWriter::new(Vec::new()).expect("journal header"),
        offsets: Vec::new(),
    };
    record_to(&base.guest, &base.config, &mut tap).expect("solo record");
    let solo = tap.w.into_inner();
    let offsets = tap.offsets;
    let total_epochs = offsets.len() as u32;
    assert!(total_epochs >= 4, "need epochs to tear between");

    let wait_terminal = |daemon: &Daemon<MemStore>, id| loop {
        let r = daemon.report(id).expect("rows are never removed");
        if r.state.is_terminal() {
            return r;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    };

    // Restart-from-zero baseline: the same session recorded through the
    // same daemon machinery with no crash — submit-to-terminal wall, so
    // the comparison includes identical scheduling overhead on both
    // sides. Best of two, like every row (daemon scheduling jitter sits
    // at the millisecond scale these runs measure).
    let restart_once = || {
        let daemon = Daemon::start(DaemonConfig::default(), Arc::new(MemStore::new()));
        let started = Instant::now();
        let id = daemon.submit(base.clone()).expect("admit baseline");
        let report = wait_terminal(&daemon, id);
        let wall = started.elapsed();
        assert_eq!(report.state, SessionState::Finalized);
        daemon.shutdown();
        wall
    };
    let restart_wall = restart_once().min(restart_once());

    let resume_once = |crash_frac: f64| {
        // Tear mid-epoch k+1, leaving exactly k committed epochs; the
        // salvaged (and preserved) prefix ends at epoch k's commit.
        let k = ((crash_frac * total_epochs as f64) as usize).clamp(1, offsets.len() - 1);
        let torn_at = (offsets[k - 1] + offsets[k]) / 2;
        let preserved_bytes = offsets[k - 1];
        let daemon = Daemon::start(DaemonConfig::default(), Arc::new(MemStore::new()));
        let spec = base.clone().sink_faults({
            let mut f = dp_os::SinkFaults::none();
            f.torn_at = Some(torn_at);
            f
        });
        let id = daemon.submit(spec).expect("admit");
        let crashed = wait_terminal(&daemon, id);
        assert_eq!(
            crashed.state,
            SessionState::Salvaged,
            "tear must salvage: {:?}",
            crashed.error
        );
        let resume_started = Instant::now();
        let from_epoch = daemon.resume(id).expect("resume");
        let report = wait_terminal(&daemon, id);
        let resume_wall = resume_started.elapsed();
        assert_eq!(
            report.state,
            SessionState::Finalized,
            "resume must finalize: {:?}",
            report.error
        );
        let identical = daemon
            .store()
            .durable(id)
            .map(|durable| durable == solo)
            .unwrap_or(false);
        daemon.shutdown();
        ResumeRow {
            crash_frac,
            from_epoch,
            preserved_bytes,
            resume_wall,
            identical,
        }
    };
    let mut rows = Vec::new();
    for crash_frac in [0.25, 0.5, 0.75] {
        let a = resume_once(crash_frac);
        let b = resume_once(crash_frac);
        rows.push(ResumeRow {
            identical: a.identical && b.identical,
            resume_wall: a.resume_wall.min(b.resume_wall),
            ..a
        });
    }
    ResumeRun {
        size,
        total_epochs,
        total_bytes: solo.len() as u64,
        restart_wall,
        rows,
    }
}

/// E17 / Table: crash-resume latency and the work it preserves vs the
/// restart-from-zero baseline.
pub fn table_resume(run: &ResumeRun) -> Table {
    let mut t = Table::new(
        "E17 / Table: crash-resume vs restart-from-zero",
        "a salvaged session resumed from its committed prefix must finish \
         byte-identical to an uninterrupted run; the later the crash, the \
         more work the resume preserves — the durable prefix is kept (not \
         rewritten) and its epochs skip the verify pass, so resume wall \
         stays at or below restarting from zero",
        &[
            "crash point",
            "re-enacted",
            "re-recorded",
            "journal kept",
            "resume wall",
            "restart wall",
            "identical",
        ],
    );
    let restart_ms = run.restart_wall.as_secs_f64() * 1e3;
    for row in &run.rows {
        let resume_ms = row.resume_wall.as_secs_f64() * 1e3;
        t.row(vec![
            format!("{:.0}%", row.crash_frac * 100.0),
            format!("{}/{} epochs", row.from_epoch, run.total_epochs),
            format!(
                "{}/{} epochs",
                run.total_epochs - row.from_epoch,
                run.total_epochs
            ),
            format!(
                "{:.0}% ({} B)",
                row.preserved_bytes as f64 / run.total_bytes as f64 * 100.0,
                row.preserved_bytes
            ),
            format!("{resume_ms:.1} ms"),
            format!("{restart_ms:.1} ms"),
            if row.identical { "yes" } else { "NO" }.into(),
        ]);
    }
    t
}

/// The machine-readable perf record for the crash-resume experiment
/// (`BENCH_9.json`): per-crash-point resume latency, the prefix it
/// re-enacts (verify passes skipped), the epochs it re-records, and the
/// durable journal bytes it preserves against re-recording from zero.
/// Hand-rolled JSON, same as `BENCH_8.json`.
pub fn bench9_json(run: &ResumeRun) -> String {
    let restart_ms = run.restart_wall.as_secs_f64() * 1e3;
    let rows: Vec<String> = run
        .rows
        .iter()
        .map(|row| {
            let resume_ms = row.resume_wall.as_secs_f64() * 1e3;
            format!(
                concat!(
                    "    {{\"crash_frac\": {frac:.2}, \"from_epoch\": {from}, ",
                    "\"rerecorded_epochs\": {rerec}, ",
                    "\"preserved_bytes\": {kept}, \"preserved_pct\": {kept_pct:.1}, ",
                    "\"resume_wall_ms\": {resume:.2}, \"identical\": {ident}}}"
                ),
                frac = row.crash_frac,
                from = row.from_epoch,
                rerec = run.total_epochs - row.from_epoch,
                kept = row.preserved_bytes,
                kept_pct = row.preserved_bytes as f64 / run.total_bytes as f64 * 100.0,
                resume = resume_ms,
                ident = row.identical,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"bench\": 9,\n",
            "  \"name\": \"crash-resume\",\n",
            "  \"size\": \"{size}\",\n",
            "  \"total_epochs\": {epochs},\n",
            "  \"total_bytes\": {bytes},\n",
            "  \"restart_wall_ms\": {restart:.2},\n",
            "  \"rows\": [\n{rows}\n  ]\n",
            "}}\n"
        ),
        size = run.size,
        epochs = run.total_epochs,
        bytes = run.total_bytes,
        restart = restart_ms,
        rows = rows.join(",\n"),
    )
}

/// One footprint point of the E18 hashing microbench: real wall time of
/// one end-of-epoch state hash over a machine with `resident_pages`
/// resident and `dirty_pages` freshly dirtied, incremental vs full rehash.
pub struct HashSweepRow {
    /// Resident (non-zero) pages in the machine.
    pub resident_pages: u64,
    /// Pages dirtied since the last digest refresh.
    pub dirty_pages: u64,
    /// Median wall time of the incremental `state_hash`.
    pub incremental: std::time::Duration,
    /// Median wall time of a from-scratch `state_hash_scratch`.
    pub full: std::time::Duration,
    /// Median wall time of `Checkpoint::capture` (hash + CoW clone) with a
    /// warm digest cache.
    pub checkpoint: std::time::Duration,
}

/// One end-to-end E18 recording: the same guest recorded with the
/// incremental digest cache and with the full-rehash knob forced on.
pub struct HashRecordRow {
    /// Workload label.
    pub name: String,
    /// Epochs the run committed.
    pub epochs: u64,
    /// Modeled pages the incremental digest re-hashed (RecorderStats).
    pub hashed_pages: u64,
    /// Modeled resident pages it skipped (RecorderStats).
    pub hash_skipped_pages: u64,
    /// Journal bytes the run produced.
    pub journal_bytes: u64,
    /// Recording wall time with the incremental digest (best of two).
    pub incremental_wall: std::time::Duration,
    /// Recording wall time with full rehash forced (best of two).
    pub full_wall: std::time::Duration,
}

/// The raw material shared by the E18 tables and `BENCH_10.json`.
pub struct HashRun {
    /// Suite size the run was scaled from.
    pub size: Size,
    /// Microbench sweep rows, smallest footprint first.
    pub sweep: Vec<HashSweepRow>,
    /// End-to-end recorder rows.
    pub records: Vec<HashRecordRow>,
}

fn median_ns(samples: &mut [std::time::Duration]) -> std::time::Duration {
    samples.sort();
    samples[samples.len() / 2]
}

/// Microbench: a machine with `resident` resident pages, `dirty` of which
/// are re-dirtied before every timed hash. The incremental digest's wall
/// time must track `dirty`; the scratch hash tracks `resident`.
fn hash_sweep_row(resident: u64, dirty: u64, samples: usize) -> HashSweepRow {
    use dp_vm::builder::ProgramBuilder;
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    f.ret();
    f.finish();
    let program = std::sync::Arc::new(pb.finish("main"));
    let mut machine = dp_vm::Machine::new(program, &[]);
    let kernel = dp_os::kernel::Kernel::new(Default::default());
    for p in 0..resident {
        // One non-zero byte per page keeps the page resident and hashable
        // (all-zero pages are digested as absent).
        machine.mem_mut().write_u8(p * 4096, (p % 251 + 1) as u8);
    }
    machine.mem_mut().take_dirty();
    machine.state_hash(); // warm the digest cache

    let mut inc = Vec::with_capacity(samples);
    let mut full = Vec::with_capacity(samples);
    let mut ckpt = Vec::with_capacity(samples);
    for round in 0..samples as u64 {
        let v = (round % 250 + 1) as u8;
        for d in 0..dirty {
            machine.mem_mut().write_u8(d * 4096 + 64, v);
        }
        let t = Instant::now();
        std::hint::black_box(machine.state_hash());
        inc.push(t.elapsed());
        let t = Instant::now();
        std::hint::black_box(machine.state_hash_scratch());
        full.push(t.elapsed());
        for d in 0..dirty {
            machine.mem_mut().write_u8(d * 4096 + 64, v ^ 0x55);
        }
        let t = Instant::now();
        std::hint::black_box(dp_core::Checkpoint::capture(&machine, &kernel));
        ckpt.push(t.elapsed());
    }
    HashSweepRow {
        resident_pages: resident,
        dirty_pages: dirty,
        incremental: median_ns(&mut inc),
        full: median_ns(&mut full),
        checkpoint: median_ns(&mut ckpt),
    }
}

/// A guest with a deliberately large resident footprint and a tiny
/// per-epoch dirty set: it touches `pages` pages once at startup, then
/// spends the rest of the run bumping one counter — the workload shape
/// where incremental hashing pays off most.
fn big_footprint_spec(pages: u64, iters: u64) -> dp_core::GuestSpec {
    use dp_vm::builder::ProgramBuilder;
    use dp_vm::{Reg, Width};
    let mut pb = ProgramBuilder::new();
    let buf = pb.global("big", pages * 4096);
    let counter = pb.global("counter", 8);
    let mut f = pb.function("main");
    // Populate: one non-zero byte per page.
    f.consti(Reg(1), buf as i64);
    f.constu(Reg(2), pages);
    f.consti(Reg(3), 7);
    let fill = f.label();
    f.bind(fill);
    f.store(Reg(3), Reg(1), 0, Width::W1);
    f.add(Reg(1), Reg(1), 4096i64);
    f.sub(Reg(2), Reg(2), 1i64);
    f.jnz(Reg(2), fill);
    // Work: a long single-page counter loop.
    f.consti(Reg(4), counter as i64);
    f.constu(Reg(5), iters);
    let spin = f.label();
    f.bind(spin);
    f.load(Reg(6), Reg(4), 0, Width::W8);
    f.add(Reg(6), Reg(6), 1i64);
    f.store(Reg(6), Reg(4), 0, Width::W8);
    f.sub(Reg(5), Reg(5), 1i64);
    f.jnz(Reg(5), spin);
    f.ret();
    f.finish();
    dp_core::GuestSpec::new(
        format!("bigmem-{pages}p"),
        std::sync::Arc::new(pb.finish("main")),
        dp_os::kernel::WorldConfig::default(),
    )
}

/// Records `spec` through a journal sink and returns (stats, journal
/// bytes). The caller flips the full-rehash knob around this.
fn timed_record(
    spec: &dp_core::GuestSpec,
    config: &DoublePlayConfig,
) -> (dp_core::RecorderStats, u64) {
    let mut w = dp_core::JournalWriter::new(Vec::new()).expect("journal header");
    let bundle = dp_core::record_to(spec, config, &mut w).expect("record failed");
    (bundle.stats, w.bytes_written())
}

fn hash_record_row(
    name: &str,
    spec: &dp_core::GuestSpec,
    config: &DoublePlayConfig,
) -> HashRecordRow {
    // Best of two per mode; the modeled stats are identical across runs.
    let (stats, journal_bytes) = timed_record(spec, config);
    let (stats2, _) = timed_record(spec, config);
    let incremental_wall =
        std::time::Duration::from_nanos(stats.wall.wall_ns.min(stats2.wall.wall_ns));
    dp_vm::memory::set_full_rehash(true);
    let (full_a, _) = timed_record(spec, config);
    let (full_b, _) = timed_record(spec, config);
    dp_vm::memory::set_full_rehash(false);
    let full_wall = std::time::Duration::from_nanos(full_a.wall.wall_ns.min(full_b.wall.wall_ns));
    HashRecordRow {
        name: name.to_string(),
        epochs: stats.epochs,
        hashed_pages: stats.hashed_pages,
        hash_skipped_pages: stats.hash_skipped_pages,
        journal_bytes,
        incremental_wall,
        full_wall,
    }
}

/// E18 — incremental dirty-page state hashing in the recorder hot path.
/// Part one is a microbench sweep: real wall time of one end-of-epoch
/// state hash at growing resident footprints with a fixed dirty set —
/// incremental time must track the dirty count while the full rehash
/// tracks the footprint. Part two records real guests end to end, the
/// same run with the digest cache and with full rehash forced, reporting
/// recording wall, journal throughput, and the modeled hashed/skipped
/// page split from `RecorderStats`.
pub fn hash_run(size: Size) -> HashRun {
    let factor = size.factor();
    let samples = (40 * factor).clamp(40, 200) as usize;
    // First hold the dirty set fixed while the footprint grows (the
    // incremental column must stay flat), then hold the footprint fixed
    // while the dirty set grows (it must scale with dirty pages).
    let sweep = [
        (256u64, 16u64),
        (1024, 16),
        (4096, 16),
        (4096, 64),
        (4096, 256),
    ]
    .iter()
    .map(|&(resident, dirty)| hash_sweep_row(resident, dirty, samples))
    .collect();

    let config = config_for(2);
    let pages = (384 * factor).min(4096);
    let iters = (200_000 * factor).min(1_600_000);
    let big = big_footprint_spec(pages, iters);
    let big_name = big.name.clone();
    let mut records = vec![hash_record_row(&big_name, &big, &config)];
    // One ordinary suite workload for contrast (its footprint is modest,
    // so the win is smaller — that asymmetry is part of the result).
    if let Some(case) = suite(2, size).into_iter().next() {
        records.push(hash_record_row(case.name, &case.spec, &config));
    }
    HashRun {
        size,
        sweep,
        records,
    }
}

/// E18 / Table A: the hashing microbench sweep.
pub fn table_hash_sweep(run: &HashRun) -> Table {
    let mut t = Table::new(
        "E18 / Table A: state-hash wall time vs resident footprint",
        "with a fixed dirty set, the incremental digest's cost must stay \
         flat as the resident footprint grows (it re-hashes only dirty \
         pages), while a full rehash grows linearly with the footprint; \
         checkpoint capture rides the incremental path",
        &[
            "resident pages",
            "dirty pages",
            "incremental hash",
            "full rehash",
            "speedup",
            "checkpoint capture",
        ],
    );
    for row in &run.sweep {
        let speedup = if row.incremental.as_nanos() > 0 {
            row.full.as_nanos() as f64 / row.incremental.as_nanos() as f64
        } else {
            0.0
        };
        t.row(vec![
            row.resident_pages.to_string(),
            row.dirty_pages.to_string(),
            format!("{:?}", row.incremental),
            format!("{:?}", row.full),
            format!("{speedup:.1}x"),
            format!("{:?}", row.checkpoint),
        ]);
    }
    t
}

/// E18 / Table B: end-to-end recorder wall, incremental vs full rehash.
pub fn table_hash_record(run: &HashRun) -> Table {
    let mut t = Table::new(
        "E18 / Table B: recording wall time, incremental vs forced full rehash",
        "the recorder's verify hot path hashes every epoch's end state; on \
         a large-footprint/low-dirty guest the incremental digest cache \
         must produce a measurable record wall-clock win, with identical \
         recordings either way (the knob changes cost, never the value)",
        &[
            "workload",
            "epochs",
            "hashed pages",
            "skipped pages",
            "incremental wall",
            "full-rehash wall",
            "win",
            "journal B/s",
        ],
    );
    for row in &run.records {
        let win = if row.incremental_wall.as_nanos() > 0 {
            row.full_wall.as_nanos() as f64 / row.incremental_wall.as_nanos() as f64
        } else {
            0.0
        };
        let bps = if row.incremental_wall.as_secs_f64() > 0.0 {
            row.journal_bytes as f64 / row.incremental_wall.as_secs_f64()
        } else {
            0.0
        };
        t.row(vec![
            row.name.clone(),
            row.epochs.to_string(),
            row.hashed_pages.to_string(),
            row.hash_skipped_pages.to_string(),
            format!("{:?}", row.incremental_wall),
            format!("{:?}", row.full_wall),
            format!("{win:.2}x"),
            format!("{bps:.3e}"),
        ]);
    }
    t
}

/// The machine-readable perf record for the hashing experiment
/// (`BENCH_10.json`): the microbench sweep (per-hash wall nanoseconds,
/// incremental vs full, plus checkpoint latency) and the end-to-end
/// recordings (wall both ways, journal throughput, modeled hashed/skipped
/// pages). Hand-rolled JSON, same as `BENCH_9.json`.
pub fn bench10_json(run: &HashRun) -> String {
    let sweep: Vec<String> = run
        .sweep
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "    {{\"resident_pages\": {res}, \"dirty_pages\": {dirty}, ",
                    "\"incremental_hash_ns\": {inc}, \"full_rehash_ns\": {full}, ",
                    "\"checkpoint_capture_ns\": {ckpt}}}"
                ),
                res = row.resident_pages,
                dirty = row.dirty_pages,
                inc = row.incremental.as_nanos(),
                full = row.full.as_nanos(),
                ckpt = row.checkpoint.as_nanos(),
            )
        })
        .collect();
    let records: Vec<String> = run
        .records
        .iter()
        .map(|row| {
            let bps = if row.incremental_wall.as_secs_f64() > 0.0 {
                row.journal_bytes as f64 / row.incremental_wall.as_secs_f64()
            } else {
                0.0
            };
            format!(
                concat!(
                    "    {{\"workload\": \"{name}\", \"epochs\": {epochs}, ",
                    "\"hashed_pages\": {hashed}, \"hash_skipped_pages\": {skipped}, ",
                    "\"incremental_wall_ms\": {inc:.2}, \"full_rehash_wall_ms\": {full:.2}, ",
                    "\"journal_bytes\": {jb}, \"journal_bytes_per_sec\": {bps:.1}}}"
                ),
                name = row.name,
                epochs = row.epochs,
                hashed = row.hashed_pages,
                skipped = row.hash_skipped_pages,
                inc = row.incremental_wall.as_secs_f64() * 1e3,
                full = row.full_wall.as_secs_f64() * 1e3,
                jb = row.journal_bytes,
                bps = bps,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"bench\": 10,\n",
            "  \"name\": \"incremental-hashing\",\n",
            "  \"size\": \"{size}\",\n",
            "  \"sweep\": [\n{sweep}\n  ],\n",
            "  \"records\": [\n{records}\n  ]\n",
            "}}\n"
        ),
        size = run.size,
        sweep = sweep.join(",\n"),
        records = records.join(",\n"),
    )
}

/// Sanity harness used by tests: native measurement agrees between the
/// coordinator and a direct call.
pub fn native_cycles(case: &WorkloadCase, threads: usize) -> u64 {
    measure_native(&case.spec, &config_for(threads)).expect("native run failed")
}
