//! Wall-clock recording cost of the baseline schemes vs DoublePlay
//! (experiment E5's real-time side).

use dp_bench::config_for;
use dp_bench::walltime::bench;
use dp_workloads::{suite, Size};

fn main() {
    let case = suite(2, Size::Small)
        .into_iter()
        .find(|w| w.name == "kvstore")
        .unwrap();
    let config = config_for(2);
    bench("baselines-kvstore", "doubleplay", 10, || {
        dp_core::record(&case.spec, &config).unwrap()
    });
    bench("baselines-kvstore", "uniprocessor", 10, || {
        dp_baselines::uniproc::record(&case.spec, &config).unwrap()
    });
    bench("baselines-kvstore", "value-log", 10, || {
        dp_baselines::value_log::record(&case.spec, &config).unwrap()
    });
    bench("baselines-kvstore", "crew", 10, || {
        dp_baselines::crew::record(&case.spec, &config).unwrap()
    });
}
