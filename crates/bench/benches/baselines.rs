//! Wall-clock recording cost of the baseline schemes vs DoublePlay
//! (experiment E5's real-time side).

use criterion::{criterion_group, criterion_main, Criterion};
use dp_bench::config_for;
use dp_workloads::{suite, Size};

fn bench_baselines(c: &mut Criterion) {
    let case = suite(2, Size::Small)
        .into_iter()
        .find(|w| w.name == "kvstore")
        .unwrap();
    let config = config_for(2);
    let mut g = c.benchmark_group("baselines-kvstore");
    g.sample_size(10);
    g.bench_function("doubleplay", |b| {
        b.iter(|| dp_core::record(&case.spec, &config).unwrap())
    });
    g.bench_function("uniprocessor", |b| {
        b.iter(|| dp_baselines::uniproc::record(&case.spec, &config).unwrap())
    });
    g.bench_function("value-log", |b| {
        b.iter(|| dp_baselines::value_log::record(&case.spec, &config).unwrap())
    });
    g.bench_function("crew", |b| {
        b.iter(|| dp_baselines::crew::record(&case.spec, &config).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
