//! Wall-clock cost of pipelined recording versus the sequential driver —
//! the engineering-side counterpart of experiment E13. On a multicore
//! host the pipelined medians should drop as workers grow; on a starved
//! host they converge toward the sequential figure (the byte-identity
//! contract is asserted by the E13 table and the property suite, not
//! here).

use dp_bench::experiments::{verify_heavy_spec, wallclock_config};
use dp_bench::walltime::{bench, bench_throughput};

fn main() {
    let spec = verify_heavy_spec(192, 6_000);
    let seq = wallclock_config(1).pipelined(false);
    let epochs = dp_core::record(&spec, &seq).unwrap().stats.epochs;
    println!("record_pipeline: {epochs} epochs per run");
    bench_throughput("record_pipeline", "sequential", 5, epochs, || {
        dp_core::record(&spec, &seq).unwrap()
    });
    for workers in [1, 2, 4] {
        let config = wallclock_config(workers).pipelined(true);
        bench(
            "record_pipeline",
            &format!("pipelined_w{workers}"),
            5,
            || dp_core::record(&spec, &config).unwrap(),
        );
    }
}
