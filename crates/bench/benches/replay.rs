//! Wall-clock cost of sequential vs. parallel offline replay (experiment
//! E7's real-time side).

use dp_bench::config_for;
use dp_bench::walltime::bench;
use dp_workloads::{suite, Size};

fn main() {
    let case = suite(2, Size::Small)
        .into_iter()
        .find(|w| w.name == "ocean")
        .unwrap();
    let bundle = dp_core::record(&case.spec, &config_for(2)).unwrap();
    bench("replay", "sequential", 10, || {
        dp_core::replay_sequential(&bundle.recording, &case.spec.program).unwrap()
    });
    for threads in [2usize, 4] {
        bench("replay", &format!("parallel-{threads}"), 10, || {
            dp_core::replay_parallel(&bundle.recording, &case.spec.program, threads).unwrap()
        });
    }
}
