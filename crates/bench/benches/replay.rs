//! Wall-clock cost of sequential vs. parallel offline replay (experiment
//! E7's real-time side).

use criterion::{criterion_group, criterion_main, Criterion};
use dp_bench::config_for;
use dp_workloads::{suite, Size};

fn bench_replay(c: &mut Criterion) {
    let case = suite(2, Size::Small)
        .into_iter()
        .find(|w| w.name == "ocean")
        .unwrap();
    let bundle = dp_core::record(&case.spec, &config_for(2)).unwrap();
    let mut g = c.benchmark_group("replay");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| dp_core::replay_sequential(&bundle.recording, &case.spec.program).unwrap())
    });
    for threads in [2usize, 4] {
        g.bench_function(format!("parallel-{threads}"), |b| {
            b.iter(|| {
                dp_core::replay_parallel(&bundle.recording, &case.spec.program, threads).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
