//! Raw interpreter throughput (instructions/second) — the substrate speed
//! every simulated-time result is built on.

use dp_bench::walltime::bench_throughput;
use dp_vm::builder::ProgramBuilder;
use dp_vm::observer::NullObserver;
use dp_vm::{BinOp, Machine, Reg, SliceLimits, Src, Tid, Width};
use std::sync::Arc;

fn program(iters: i64) -> Arc<dp_vm::Program> {
    let mut pb = ProgramBuilder::new();
    let g = pb.global("g", 64);
    let mut f = pb.function("main");
    let top = f.label();
    f.consti(Reg(1), 0);
    f.consti(Reg(9), g as i64);
    f.bind(top);
    f.add(Reg(1), Reg(1), 1i64);
    f.load(Reg(2), Reg(9), 0, Width::W8);
    f.add(Reg(2), Reg(2), Reg(1));
    f.store(Reg(2), Reg(9), 0, Width::W8);
    f.bin(BinOp::Ltu, Reg(3), Reg(1), Src::Imm(iters));
    f.jnz(Reg(3), top);
    f.ret();
    f.finish();
    Arc::new(pb.finish("main"))
}

fn main() {
    let iters = 200_000i64;
    let p = program(iters);
    bench_throughput(
        "interpreter",
        "arith-load-store-loop",
        10,
        iters as u64 * 6,
        || {
            let mut m = Machine::new(p.clone(), &[]);
            m.run_slice(Tid(0), SliceLimits::budget(u64::MAX), &mut NullObserver)
                .unwrap()
        },
    );
}
