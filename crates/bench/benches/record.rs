//! Wall-clock cost of recording (the whole uniparallel pipeline) per
//! workload — the engineering-side counterpart of experiment E2.

use dp_bench::config_for;
use dp_bench::walltime::bench;
use dp_workloads::{suite, Size};

fn main() {
    for name in ["pfscan", "kvstore", "ocean"] {
        let case = suite(2, Size::Small)
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        bench("record", name, 10, || {
            dp_core::record(&case.spec, &config_for(2)).unwrap()
        });
    }
}
