//! Wall-clock cost of recording (the whole uniparallel pipeline) per
//! workload — the engineering-side counterpart of experiment E2.

use criterion::{criterion_group, criterion_main, Criterion};
use dp_bench::config_for;
use dp_workloads::{suite, Size};

fn bench_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("record");
    g.sample_size(10);
    for name in ["pfscan", "kvstore", "ocean"] {
        let case = suite(2, Size::Small)
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        g.bench_function(name, |b| {
            b.iter(|| dp_core::record(&case.spec, &config_for(2)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_record);
criterion_main!(benches);
