//! The workload harness: a uniform interface over the benchmark programs,
//! mirroring the paper's client/server/scientific suite.

use dp_core::GuestSpec;
use dp_os::kernel::Kernel;
use dp_vm::Machine;
use std::fmt;

/// How large a workload instance to build. The evaluation uses `Medium`;
/// tests use `Small` to stay fast; `Large` stresses the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// Seconds-scale unit-test size.
    Small,
    /// Benchmark size (tens of millions of instructions).
    Medium,
    /// Stress size.
    Large,
}

impl Size {
    /// A scale factor the generators multiply their iteration counts by.
    pub fn factor(self) -> u64 {
        match self {
            Size::Small => 1,
            Size::Medium => 8,
            Size::Large => 24,
        }
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Size::Small => write!(f, "small"),
            Size::Medium => write!(f, "medium"),
            Size::Large => write!(f, "large"),
        }
    }
}

/// Workload category, as the paper groups its benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Client-style parallel utilities (pbzip2, pfscan, aget).
    Client,
    /// Server-style request handlers (Apache, MySQL).
    Server,
    /// Scientific kernels (SPLASH-2-style).
    Scientific,
    /// Intentionally racy microbenchmarks (divergence studies).
    Racy,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Client => write!(f, "client"),
            Category::Server => write!(f, "server"),
            Category::Scientific => write!(f, "scientific"),
            Category::Racy => write!(f, "racy"),
        }
    }
}

/// A workload verification failure.
#[derive(Debug, Clone)]
pub struct VerifyError {
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload verification failed: {}", self.detail)
    }
}

impl std::error::Error for VerifyError {}

/// A convenience constructor used by the verifiers.
pub fn verify_err(detail: impl Into<String>) -> VerifyError {
    VerifyError {
        detail: detail.into(),
    }
}

/// Asserts equality in a verifier, with context.
pub fn expect_eq<T: PartialEq + fmt::Debug>(
    what: &str,
    actual: T,
    expected: T,
) -> Result<(), VerifyError> {
    if actual == expected {
        Ok(())
    } else {
        Err(verify_err(format!(
            "{what}: got {actual:?}, expected {expected:?}"
        )))
    }
}

/// Final-state check installed by each workload.
pub type VerifyFn = Box<dyn Fn(&Machine, &Kernel) -> Result<(), VerifyError> + Send + Sync>;

/// One runnable benchmark instance: a guest spec plus a verifier that
/// checks the final world state for correctness (so every experiment
/// double-checks that record/replay didn't corrupt the application).
pub struct WorkloadCase {
    /// Short name ("pcomp", "ocean", ...).
    pub name: &'static str,
    /// Category for report grouping.
    pub category: Category,
    /// Worker-thread count the instance was built for.
    pub threads: usize,
    /// The bootable guest.
    pub spec: GuestSpec,
    /// Checks the final state (exit code, file contents, network traffic).
    pub verify: VerifyFn,
    /// Expected total external (world-visible) output bytes, when the
    /// workload's traffic is deterministic. Recording consumers check this
    /// against the recording's committed external chunks.
    pub expected_external_bytes: Option<u64>,
}

impl fmt::Debug for WorkloadCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadCase")
            .field("name", &self.name)
            .field("category", &self.category)
            .field("threads", &self.threads)
            .finish()
    }
}

/// Builds the full paper-style suite for a worker-thread count: client
/// utilities, servers, and scientific kernels (no racy microbenchmarks).
pub fn suite(threads: usize, size: Size) -> Vec<WorkloadCase> {
    vec![
        crate::pcomp::build(threads, size),
        crate::pfscan::build(threads, size),
        crate::aget::build(threads, size),
        crate::webserve::build(threads, size),
        crate::kvstore::build(threads, size),
        crate::ocean::build(threads, size),
        crate::water::build(threads, size),
        crate::radix::build(threads, size),
    ]
}

/// The racy microbenchmarks (experiment E8).
pub fn racy_suite(threads: usize, size: Size) -> Vec<WorkloadCase> {
    vec![
        crate::racey::counter(threads, size),
        crate::racey::sparse_counter(threads, size),
        crate::racey::lazy_init(threads, size),
        crate::racey::banking(threads, size),
    ]
}

/// The full suite plus the racy microbenchmarks — the session mix a
/// multi-tenant recording service sees (experiment E14, `dpd-load`).
pub fn mixed_suite(threads: usize, size: Size) -> Vec<WorkloadCase> {
    let mut cases = suite(threads, size);
    cases.extend(racy_suite(threads, size));
    cases
}

/// Builds the named workload (searching [`mixed_suite`]), or `None` for an
/// unknown name. Shared by the CLI, the load generator, and the bench
/// runner so "a workload name" means the same thing everywhere.
pub fn find(name: &str, threads: usize, size: Size) -> Option<WorkloadCase> {
    mixed_suite(threads, size)
        .into_iter()
        .find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_categories() {
        let suite = suite(2, Size::Small);
        assert_eq!(suite.len(), 8);
        for cat in [Category::Client, Category::Server, Category::Scientific] {
            assert!(
                suite.iter().any(|w| w.category == cat),
                "missing {cat} workloads"
            );
        }
        let names: Vec<_> = suite.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["pcomp", "pfscan", "aget", "webserve", "kvstore", "ocean", "water", "radix"]
        );
    }

    #[test]
    fn size_factors_are_ordered() {
        assert!(Size::Small.factor() < Size::Medium.factor());
        assert!(Size::Medium.factor() < Size::Large.factor());
        assert_eq!(Size::Small.to_string(), "small");
    }

    #[test]
    fn expect_eq_formats_errors() {
        assert!(expect_eq("x", 1, 1).is_ok());
        let err = expect_eq("exit code", 1, 2).unwrap_err();
        assert!(err.to_string().contains("exit code"));
        assert!(err.to_string().contains("got 1"));
    }
}
