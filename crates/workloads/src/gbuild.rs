//! Guest-program building blocks shared by the workloads: spawn/join
//! boilerplate, host-side data generation, and reference implementations of
//! the guest algorithms (used by verifiers).

use dp_os::abi;
use dp_vm::builder::FunctionBuilder;
use dp_vm::{FuncId, Reg, Width};

/// Emits code to spawn `n` workers running `worker`, passing each its
/// index in `r0` (thread ids will be `1..=n`).
pub fn spawn_workers(f: &mut FunctionBuilder<'_>, worker: FuncId, n: usize) {
    for i in 0..n {
        f.consti(Reg(0), worker.0 as i64);
        f.consti(Reg(1), i as i64);
        f.consti(Reg(2), 0);
        f.syscall(abi::SYS_SPAWN);
    }
}

/// Emits code to join threads `1..=n`.
pub fn join_workers(f: &mut FunctionBuilder<'_>, n: usize) {
    for t in 1..=n as i64 {
        f.consti(Reg(0), t);
        f.syscall(abi::SYS_JOIN);
    }
}

/// Emits `exit(mem[addr])`.
pub fn exit_with_global(f: &mut FunctionBuilder<'_>, addr: u64) {
    f.consti(Reg(9), addr as i64);
    f.load(Reg(0), Reg(9), 0, Width::W8);
    f.syscall(abi::SYS_EXIT);
}

/// Emits `thread_exit(0)`.
pub fn thread_exit0(f: &mut FunctionBuilder<'_>) {
    f.consti(Reg(0), 0);
    f.syscall(abi::SYS_THREAD_EXIT);
}

/// Host-side xorshift64 matching the guest runtime's `__rt_xorshift`.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates the generator (seed must be nonzero).
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next value (identical sequence to the guest routine).
    pub fn next_u64(&mut self) -> u64 {
        let mut s = self.state;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.state = s;
        s
    }
}

/// Deterministic pseudo-text: lowercase letters and spaces, newline every
/// ~64 bytes. Used as scan/compress input.
pub fn gen_text(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = XorShift::new(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let v = rng.next_u64();
        for i in 0..8 {
            if out.len() >= len {
                break;
            }
            let b = ((v >> (i * 8)) & 0xff) as u8;
            let ch = match b % 32 {
                0..=25 => b'a' + (b % 26),
                26..=29 => b' ',
                30 => b'\n',
                _ => b'e',
            };
            out.push(ch);
        }
    }
    out
}

/// Deterministic binary blob with enough runs to make RLE interesting.
pub fn gen_blob(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = XorShift::new(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let v = rng.next_u64();
        let byte = (v & 0xff) as u8;
        let run = 1 + ((v >> 8) % 7) as usize;
        for _ in 0..run.min(len - out.len()) {
            out.push(byte);
        }
    }
    out
}

/// Reference RLE encoder matching the guest compressor in `pcomp`:
/// pairs of `(count: u8 up to 255, byte)`.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

/// Counts non-overlapping occurrences of `needle` in `hay`, matching the
/// guest scanner in `pfscan`.
pub fn count_occurrences(hay: &[u8], needle: &[u8]) -> u64 {
    if needle.is_empty() || hay.len() < needle.len() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i + needle.len() <= hay.len() {
        if &hay[i..i + needle.len()] == needle {
            count += 1;
            i += needle.len();
        } else {
            i += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_is_deterministic_and_printable() {
        let a = gen_text(7, 1000);
        let b = gen_text(7, 1000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        assert!(a
            .iter()
            .all(|&c| c.is_ascii_lowercase() || c == b' ' || c == b'\n'));
        assert_ne!(gen_text(8, 1000), a);
    }

    #[test]
    fn blob_has_runs() {
        let blob = gen_blob(3, 4096);
        assert_eq!(blob.len(), 4096);
        let runs = blob.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(runs > 500, "blob not run-heavy enough: {runs}");
    }

    #[test]
    fn rle_roundtrip_via_decode() {
        let data = gen_blob(5, 2000);
        let enc = rle_encode(&data);
        // Decode and compare.
        let mut dec = Vec::new();
        for pair in enc.chunks(2) {
            for _ in 0..pair[0] {
                dec.push(pair[1]);
            }
        }
        assert_eq!(dec, data);
        assert!(enc.len() < data.len(), "RLE should compress runs");
    }

    #[test]
    fn occurrence_counting() {
        assert_eq!(count_occurrences(b"abcabcab", b"abc"), 2);
        assert_eq!(count_occurrences(b"aaaa", b"aa"), 2); // non-overlapping
        assert_eq!(count_occurrences(b"xyz", b"abc"), 0);
        assert_eq!(count_occurrences(b"", b"a"), 0);
        assert_eq!(count_occurrences(b"a", b""), 0);
    }

    #[test]
    fn xorshift_matches_guest_semantics() {
        let mut x = XorShift::new(88172645463325252);
        let v = x.next_u64();
        let mut s: u64 = 88172645463325252;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        assert_eq!(v, s);
    }
}
