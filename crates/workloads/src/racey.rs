//! Intentionally racy microbenchmarks for the divergence/rollback study
//! (experiment E8).
//!
//! Each has a real data race whose outcome depends on thread interleaving,
//! so the thread-parallel and epoch-parallel executions genuinely disagree
//! at some rate — exercising divergence detection, forward recovery, and
//! the guarantee that the *recording* still replays exactly even when the
//! original run diverged. Verifiers accept any racy-but-plausible outcome.

use crate::gbuild;
use crate::harness::{verify_err, Category, Size, VerifyError, WorkloadCase};
use dp_core::GuestSpec;
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::{BinOp, Reg, Width};
use std::sync::Arc;

/// Plain (unsynchronized) read-modify-write counter: the canonical lost
/// update race.
pub fn counter(threads: usize, size: Size) -> WorkloadCase {
    let iters = 4_000 * size.factor() as i64;
    let mut pb = ProgramBuilder::new();
    let g_counter = pb.global("counter", 8);

    {
        let mut w = pb.function("worker");
        let top = w.label();
        let done = w.label();
        w.consti(Reg(10), 0);
        w.consti(Reg(9), g_counter as i64);
        w.bind(top);
        w.bin(BinOp::Ltu, Reg(11), Reg(10), iters);
        w.jz(Reg(11), done);
        w.load(Reg(12), Reg(9), 0, Width::W8);
        w.add(Reg(12), Reg(12), 1i64);
        w.store(Reg(12), Reg(9), 0, Width::W8);
        w.add(Reg(10), Reg(10), 1i64);
        w.jmp(top);
        w.bind(done);
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");
    {
        let mut f = pb.function("main");
        gbuild::spawn_workers(&mut f, worker, threads);
        gbuild::join_workers(&mut f, threads);
        gbuild::exit_with_global(&mut f, g_counter);
        f.finish();
    }
    let spec = GuestSpec::new(
        "racey-counter",
        Arc::new(pb.finish("main")),
        WorldConfig::default(),
    );
    let max = (iters as u64) * threads as u64;
    WorkloadCase {
        name: "racey-counter",
        category: Category::Racy,
        threads,
        spec,
        verify: Box::new(move |machine, _| -> Result<(), VerifyError> {
            let got = machine.halted().unwrap_or(0);
            if got == 0 || got > max {
                return Err(verify_err(format!("counter {got} outside (0, {max}]")));
            }
            Ok(())
        }),
        expected_external_bytes: None,
    }
}

/// Like [`counter`] but with ~300 instructions of private compute per racy
/// increment, so only a fraction of epochs contain a manifest race — the
/// knob for divergence-rate and adaptive-epoch studies.
pub fn sparse_counter(threads: usize, size: Size) -> WorkloadCase {
    let iters = 4 * size.factor() as i64;
    let mut pb = ProgramBuilder::new();
    let g_counter = pb.global("counter", 8);
    {
        let mut w = pb.function("worker");
        let top = w.label();
        let busy = w.label();
        let done = w.label();
        w.consti(Reg(10), 0);
        w.consti(Reg(9), g_counter as i64);
        w.bind(top);
        w.bin(BinOp::Ltu, Reg(11), Reg(10), iters);
        w.jz(Reg(11), done);
        // ~100k instructions of private compute between racy increments,
        // so a given epoch usually sees at most one thread touch the
        // counter and divergence is probabilistic rather than certain.
        w.consti(Reg(14), 33_000);
        w.bind(busy);
        w.add(Reg(13), Reg(13), Reg(14));
        w.sub(Reg(14), Reg(14), 1i64);
        w.jnz(Reg(14), busy);
        w.load(Reg(12), Reg(9), 0, Width::W8);
        w.add(Reg(12), Reg(12), 1i64);
        w.store(Reg(12), Reg(9), 0, Width::W8);
        w.add(Reg(10), Reg(10), 1i64);
        w.jmp(top);
        w.bind(done);
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");
    {
        let mut f = pb.function("main");
        gbuild::spawn_workers(&mut f, worker, threads);
        gbuild::join_workers(&mut f, threads);
        gbuild::exit_with_global(&mut f, g_counter);
        f.finish();
    }
    let spec = GuestSpec::new(
        "racey-sparse",
        Arc::new(pb.finish("main")),
        WorldConfig::default(),
    );
    let max = (iters as u64) * threads as u64;
    WorkloadCase {
        name: "racey-sparse",
        category: Category::Racy,
        threads,
        spec,
        verify: Box::new(move |machine, _| -> Result<(), VerifyError> {
            let got = machine.halted().unwrap_or(0);
            if got == 0 || got > max {
                return Err(verify_err(format!("counter {got} outside (0, {max}]")));
            }
            Ok(())
        }),
        expected_external_bytes: None,
    }
}

/// Racy lazy initialization: every thread checks a shared pointer and
/// initializes it if it looks null (check-then-act without a lock), then
/// uses whichever object it observed.
pub fn lazy_init(threads: usize, size: Size) -> WorkloadCase {
    let rounds = 1_500 * size.factor() as i64;
    let mut pb = ProgramBuilder::new();
    let rt = dp_os::guest::Rt::install(&mut pb);
    let g_ptr = pb.global("shared_ptr", 8);
    let g_sum = pb.global("use_sum", 8);

    {
        let mut w = pb.function("worker");
        let top = w.label();
        let done = w.label();
        let have = w.label();
        w.consti(Reg(10), 0);
        w.bind(top);
        w.bin(BinOp::Ltu, Reg(11), Reg(10), rounds);
        w.jz(Reg(11), done);
        // if shared_ptr == 0 { shared_ptr = alloc(64); *ptr = tid_marker }
        w.consti(Reg(9), g_ptr as i64);
        w.load(Reg(12), Reg(9), 0, Width::W8);
        w.jnz(Reg(12), have);
        w.consti(Reg(0), 64);
        w.call(rt.alloc);
        w.mov(Reg(12), Reg(0));
        w.add(Reg(13), Reg(10), 7i64);
        w.store(Reg(13), Reg(12), 0, Width::W8);
        w.consti(Reg(9), g_ptr as i64);
        w.store(Reg(12), Reg(9), 0, Width::W8);
        w.bind(have);
        // use: sum += *shared_ptr; occasionally reset to null (plain).
        w.load(Reg(13), Reg(12), 0, Width::W8);
        w.consti(Reg(9), g_sum as i64);
        w.load(Reg(14), Reg(9), 0, Width::W8);
        w.add(Reg(14), Reg(14), Reg(13));
        w.store(Reg(14), Reg(9), 0, Width::W8);
        w.bin(BinOp::And, Reg(15), Reg(10), 7i64);
        let no_reset = w.label();
        w.jnz(Reg(15), no_reset);
        w.consti(Reg(9), g_ptr as i64);
        w.consti(Reg(13), 0);
        w.store(Reg(13), Reg(9), 0, Width::W8);
        w.bind(no_reset);
        w.add(Reg(10), Reg(10), 1i64);
        w.jmp(top);
        w.bind(done);
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");
    {
        let mut f = pb.function("main");
        gbuild::spawn_workers(&mut f, worker, threads);
        gbuild::join_workers(&mut f, threads);
        gbuild::exit_with_global(&mut f, g_sum);
        f.finish();
    }
    let spec = GuestSpec::new(
        "racey-lazyinit",
        Arc::new(pb.finish("main")),
        WorldConfig::default(),
    );
    WorkloadCase {
        name: "racey-lazyinit",
        category: Category::Racy,
        threads,
        spec,
        verify: Box::new(|machine, _| -> Result<(), VerifyError> {
            machine
                .halted()
                .map(|_| ())
                .ok_or_else(|| verify_err("did not halt"))
        }),
        expected_external_bytes: None,
    }
}

/// Racy "bank": threads transfer between accounts with unsynchronized
/// check-then-act balance updates; total money should be conserved but
/// races can corrupt it.
pub fn banking(threads: usize, size: Size) -> WorkloadCase {
    const ACCOUNTS: i64 = 16;
    const INITIAL: i64 = 1_000;
    let transfers = 1_500 * size.factor() as i64;
    let mut pb = ProgramBuilder::new();
    let _rt = dp_os::guest::Rt::install(&mut pb);
    let accounts_init: Vec<u8> = (0..ACCOUNTS)
        .flat_map(|_| (INITIAL as u64).to_le_bytes())
        .collect();
    let g_acc = pb.global_data("accounts", &accounts_init);

    {
        let mut w = pb.function("worker");
        let top = w.label();
        let done = w.label();
        let skip = w.label();
        // Per-thread xorshift state on the stack.
        w.mov(Reg(20), Reg(0));
        w.sub(Reg(21), Reg(31), 16i64);
        w.add(Reg(16), Reg(20), 3i64);
        w.mul(Reg(16), Reg(16), 0x2545F491i64);
        w.store(Reg(16), Reg(21), 0, Width::W8);
        w.consti(Reg(10), 0);
        w.bind(top);
        w.bin(BinOp::Ltu, Reg(11), Reg(10), transfers);
        w.jz(Reg(11), done);
        w.mov(Reg(0), Reg(21));
        w.call_named("__rt_xorshift");
        w.mov(Reg(22), Reg(0));
        // from = r % A ; to = (r>>16) % A ; amt = (r>>32) % 50
        w.bin(BinOp::Remu, Reg(23), Reg(22), ACCOUNTS);
        w.bin(BinOp::Shr, Reg(24), Reg(22), 16i64);
        w.bin(BinOp::Remu, Reg(24), Reg(24), ACCOUNTS);
        w.bin(BinOp::Shr, Reg(25), Reg(22), 32i64);
        w.bin(BinOp::Remu, Reg(25), Reg(25), 50i64);
        // if balance[from] >= amt: balance[from]-=amt; balance[to]+=amt
        w.mul(Reg(23), Reg(23), 8i64);
        w.add(Reg(23), Reg(23), g_acc as i64);
        w.mul(Reg(24), Reg(24), 8i64);
        w.add(Reg(24), Reg(24), g_acc as i64);
        w.load(Reg(26), Reg(23), 0, Width::W8);
        w.bin(BinOp::Ltu, Reg(16), Reg(26), Reg(25));
        w.jnz(Reg(16), skip);
        w.sub(Reg(26), Reg(26), Reg(25));
        w.store(Reg(26), Reg(23), 0, Width::W8);
        w.load(Reg(27), Reg(24), 0, Width::W8);
        w.add(Reg(27), Reg(27), Reg(25));
        w.store(Reg(27), Reg(24), 0, Width::W8);
        w.bind(skip);
        w.add(Reg(10), Reg(10), 1i64);
        w.jmp(top);
        w.bind(done);
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");
    {
        let mut f = pb.function("main");
        gbuild::spawn_workers(&mut f, worker, threads);
        gbuild::join_workers(&mut f, threads);
        // Exit with the total balance.
        let sum_top = f.label();
        let sum_done = f.label();
        f.consti(Reg(20), 0);
        f.consti(Reg(21), 0);
        f.bind(sum_top);
        f.bin(BinOp::Ltu, Reg(16), Reg(20), ACCOUNTS);
        f.jz(Reg(16), sum_done);
        f.mul(Reg(17), Reg(20), 8i64);
        f.add(Reg(17), Reg(17), g_acc as i64);
        f.load(Reg(18), Reg(17), 0, Width::W8);
        f.add(Reg(21), Reg(21), Reg(18));
        f.add(Reg(20), Reg(20), 1i64);
        f.jmp(sum_top);
        f.bind(sum_done);
        f.mov(Reg(0), Reg(21));
        f.syscall(dp_os::abi::SYS_EXIT);
        f.finish();
    }
    let spec = GuestSpec::new(
        "racey-bank",
        Arc::new(pb.finish("main")),
        WorldConfig::default(),
    );
    WorkloadCase {
        name: "racey-bank",
        category: Category::Racy,
        threads,
        spec,
        verify: Box::new(|machine, _| -> Result<(), VerifyError> {
            machine
                .halted()
                .map(|_| ())
                .ok_or_else(|| verify_err("did not halt"))
        }),
        expected_external_bytes: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::exec::DirectExecutor;

    #[test]
    fn racy_workloads_run_to_completion() {
        for case in [
            counter(2, Size::Small),
            lazy_init(2, Size::Small),
            banking(2, Size::Small),
        ] {
            let (mut machine, mut kernel) = case.spec.boot();
            DirectExecutor::default()
                .run(&mut machine, &mut kernel, 2_000_000_000)
                .unwrap_or_else(|e| panic!("{} failed: {e}", case.name));
            (case.verify)(&machine, &kernel).expect("verification failed");
        }
    }

    #[test]
    fn counter_is_exact_under_serial_execution() {
        // The round-robin DirectExecutor with a long quantum rarely
        // preempts mid-increment, so the serial result is the max.
        let case = counter(2, Size::Small);
        let (mut machine, mut kernel) = case.spec.boot();
        DirectExecutor { quantum: 1 << 40 }
            .run(&mut machine, &mut kernel, 2_000_000_000)
            .unwrap();
        assert_eq!(machine.halted(), Some(8_000));
    }
}
