//! `radix` — a SPLASH-2-style parallel radix sort.
//!
//! 32-bit keys sorted with four 8-bit passes. Each pass: every worker
//! histograms its slice of the source array; barrier; worker 0 turns the
//! per-worker histograms into per-worker scatter offsets (stable order:
//! digit-major, worker-minor); barrier; every worker scatters its slice
//! into the destination array through its own offsets (disjoint targets,
//! no locks); barrier; buffers swap. Deterministic, so the result is
//! verified against a host sort.
//!
//! Concurrency shape: data-parallel phases with a serial step on worker 0
//! and barrier synchronization — plus heavy cross-buffer memory traffic.

use crate::gbuild;
use crate::harness::{Category, Size, VerifyError, WorkloadCase};
use dp_core::GuestSpec;
use dp_os::guest::Rt;
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::{BinOp, Reg, Width};
use std::sync::Arc;

/// Radix digit width (bits) and bucket count.
const RADIX_BITS: u64 = 8;
const BUCKETS: u64 = 1 << RADIX_BITS;
/// Sort passes (covers 32-bit keys).
const PASSES: u64 = 4;

fn keys(size: Size) -> Vec<u64> {
    let mut rng = gbuild::XorShift::new(0x5087);
    (0..24_000 * size.factor())
        .map(|_| rng.next_u64() & 0xffff_ffff)
        .collect()
}

/// Builds a `radix` instance.
pub fn build(threads: usize, size: Size) -> WorkloadCase {
    let input = keys(size);
    let n = input.len() as u64;
    let mut expected = input.clone();
    expected.sort_unstable();
    // Exit code: checksum of the sorted array.
    let expected_sum = expected.iter().fold(0u64, |acc, &k| {
        acc.wrapping_mul(1099511628211).wrapping_add(k)
    });

    let packed: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    let mut pb = ProgramBuilder::new();
    let rt = Rt::install(&mut pb);
    let g_src = pb.global_data("keys_a", &packed);
    let g_b = pb.global("keys_b", n * 8);
    // hist[worker][bucket], then reused as offsets.
    let g_hist = pb.global("hist", threads as u64 * BUCKETS * 8);
    let g_barrier = pb.global("barrier", 16);
    let g_sum = pb.global("checksum", 8);
    let nthreads = threads as i64;

    {
        let mut w = pb.function("worker");
        let pass_top = w.label();
        let pass_done = w.label();
        let zero_top = w.label();
        let zero_done = w.label();
        let count_top = w.label();
        let count_done = w.label();
        let not_zero_a = w.label();
        let off_d_top = w.label();
        let off_d_done = w.label();
        let off_t_top = w.label();
        let off_t_done = w.label();
        let scat_top = w.label();
        let scat_done = w.label();
        let pick_a = w.label();
        let picked = w.label();
        let sum_top = w.label();
        let sum_done = w.label();
        let not_zero_b = w.label();

        // r20 idx, r21 pass, r22 start, r23 end, r30 my hist base
        w.mov(Reg(20), Reg(0));
        w.mul(Reg(22), Reg(20), n as i64);
        w.bin(BinOp::Divu, Reg(22), Reg(22), nthreads);
        w.add(Reg(23), Reg(20), 1i64);
        w.mul(Reg(23), Reg(23), n as i64);
        w.bin(BinOp::Divu, Reg(23), Reg(23), nthreads);
        w.mul(Reg(30), Reg(20), (BUCKETS * 8) as i64);
        w.add(Reg(30), Reg(30), g_hist as i64);
        w.consti(Reg(21), 0);

        w.bind(pass_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(21), PASSES as i64);
        w.jz(Reg(16), pass_done);
        // src/dst by pass parity.
        w.bin(BinOp::And, Reg(16), Reg(21), 1i64);
        w.jz(Reg(16), pick_a);
        w.consti(Reg(24), g_b as i64);
        w.consti(Reg(25), g_src as i64);
        w.jmp(picked);
        w.bind(pick_a);
        w.consti(Reg(24), g_src as i64);
        w.consti(Reg(25), g_b as i64);
        w.bind(picked);
        // shift = pass * 8
        w.mul(Reg(29), Reg(21), RADIX_BITS as i64);
        // zero my histogram
        w.consti(Reg(17), 0);
        w.bind(zero_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(17), BUCKETS as i64);
        w.jz(Reg(16), zero_done);
        w.mul(Reg(18), Reg(17), 8i64);
        w.add(Reg(18), Reg(18), Reg(30));
        w.consti(Reg(19), 0);
        w.store(Reg(19), Reg(18), 0, Width::W8);
        w.add(Reg(17), Reg(17), 1i64);
        w.jmp(zero_top);
        w.bind(zero_done);
        // count digits in my slice
        w.mov(Reg(17), Reg(22));
        w.bind(count_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(17), Reg(23));
        w.jz(Reg(16), count_done);
        w.mul(Reg(18), Reg(17), 8i64);
        w.add(Reg(18), Reg(18), Reg(24));
        w.load(Reg(19), Reg(18), 0, Width::W8);
        w.bin(BinOp::Shr, Reg(19), Reg(19), Reg(29));
        w.bin(BinOp::And, Reg(19), Reg(19), (BUCKETS - 1) as i64);
        w.mul(Reg(19), Reg(19), 8i64);
        w.add(Reg(19), Reg(19), Reg(30));
        w.load(Reg(15), Reg(19), 0, Width::W8);
        w.add(Reg(15), Reg(15), 1i64);
        w.store(Reg(15), Reg(19), 0, Width::W8);
        w.add(Reg(17), Reg(17), 1i64);
        w.jmp(count_top);
        w.bind(count_done);
        w.consti(Reg(0), g_barrier as i64);
        w.consti(Reg(1), nthreads);
        w.call(rt.barrier_wait);
        // Worker 0: prefix sums -> per-worker offsets (in place).
        w.jnz(Reg(20), not_zero_a);
        w.consti(Reg(26), 0); // running total
        w.consti(Reg(17), 0); // digit
        w.bind(off_d_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(17), BUCKETS as i64);
        w.jz(Reg(16), off_d_done);
        w.consti(Reg(18), 0); // worker t
        w.bind(off_t_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(18), nthreads);
        w.jz(Reg(16), off_t_done);
        // addr = hist + t*BUCKETS*8 + digit*8
        w.mul(Reg(19), Reg(18), (BUCKETS * 8) as i64);
        w.mul(Reg(15), Reg(17), 8i64);
        w.add(Reg(19), Reg(19), Reg(15));
        w.add(Reg(19), Reg(19), g_hist as i64);
        w.load(Reg(15), Reg(19), 0, Width::W8);
        w.store(Reg(26), Reg(19), 0, Width::W8);
        w.add(Reg(26), Reg(26), Reg(15));
        w.add(Reg(18), Reg(18), 1i64);
        w.jmp(off_t_top);
        w.bind(off_t_done);
        w.add(Reg(17), Reg(17), 1i64);
        w.jmp(off_d_top);
        w.bind(off_d_done);
        w.bind(not_zero_a);
        w.consti(Reg(0), g_barrier as i64);
        w.consti(Reg(1), nthreads);
        w.call(rt.barrier_wait);
        // scatter my slice through my offsets
        w.mov(Reg(17), Reg(22));
        w.bind(scat_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(17), Reg(23));
        w.jz(Reg(16), scat_done);
        w.mul(Reg(18), Reg(17), 8i64);
        w.add(Reg(18), Reg(18), Reg(24));
        w.load(Reg(19), Reg(18), 0, Width::W8); // key
        w.bin(BinOp::Shr, Reg(15), Reg(19), Reg(29));
        w.bin(BinOp::And, Reg(15), Reg(15), (BUCKETS - 1) as i64);
        w.mul(Reg(15), Reg(15), 8i64);
        w.add(Reg(15), Reg(15), Reg(30)); // my offset slot
        w.load(Reg(16), Reg(15), 0, Width::W8); // position
        w.mul(Reg(18), Reg(16), 8i64);
        w.add(Reg(18), Reg(18), Reg(25));
        w.store(Reg(19), Reg(18), 0, Width::W8);
        w.add(Reg(16), Reg(16), 1i64);
        w.store(Reg(16), Reg(15), 0, Width::W8);
        w.add(Reg(17), Reg(17), 1i64);
        w.jmp(scat_top);
        w.bind(scat_done);
        w.consti(Reg(0), g_barrier as i64);
        w.consti(Reg(1), nthreads);
        w.call(rt.barrier_wait);
        w.add(Reg(21), Reg(21), 1i64);
        w.jmp(pass_top);

        w.bind(pass_done);
        // Worker 0 checksums the sorted array (PASSES even -> in keys_a).
        w.jnz(Reg(20), not_zero_b);
        w.consti(Reg(26), 0);
        w.consti(Reg(17), 0);
        w.bind(sum_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(17), n as i64);
        w.jz(Reg(16), sum_done);
        w.mul(Reg(18), Reg(17), 8i64);
        w.add(Reg(18), Reg(18), g_src as i64);
        w.load(Reg(19), Reg(18), 0, Width::W8);
        w.constu(Reg(15), 1099511628211);
        w.mul(Reg(26), Reg(26), Reg(15));
        w.add(Reg(26), Reg(26), Reg(19));
        w.add(Reg(17), Reg(17), 1i64);
        w.jmp(sum_top);
        w.bind(sum_done);
        w.consti(Reg(9), g_sum as i64);
        w.store(Reg(26), Reg(9), 0, Width::W8);
        w.bind(not_zero_b);
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");

    {
        let mut f = pb.function("main");
        gbuild::spawn_workers(&mut f, worker, threads);
        gbuild::join_workers(&mut f, threads);
        gbuild::exit_with_global(&mut f, g_sum);
        f.finish();
    }

    let spec = GuestSpec::new("radix", Arc::new(pb.finish("main")), WorldConfig::default());
    WorkloadCase {
        name: "radix",
        category: Category::Scientific,
        threads,
        spec,
        verify: Box::new(move |machine, _kernel| -> Result<(), VerifyError> {
            crate::harness::expect_eq("sorted checksum", machine.halted(), Some(expected_sum))
        }),
        expected_external_bytes: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::exec::DirectExecutor;

    #[test]
    fn radix_sorts_for_all_thread_counts() {
        for threads in [1, 2, 3] {
            let case = build(threads, Size::Small);
            let (mut machine, mut kernel) = case.spec.boot();
            DirectExecutor::default()
                .run(&mut machine, &mut kernel, 2_000_000_000)
                .expect("radix failed");
            (case.verify)(&machine, &kernel).expect("verification failed");
        }
    }

    #[test]
    fn passes_cover_key_width() {
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(PASSES * RADIX_BITS >= 32);
        }
    }
}
