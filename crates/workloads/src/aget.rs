//! `aget` — a parallel downloader.
//!
//! `N` threads each open their own connection to a range-serving peer,
//! request a disjoint stripe of the remote blob (`send` a 16-byte
//! offset/length request), receive it in bounded chunks, and write it into
//! the shared output file at the right offset through a private fd. Main
//! pre-creates the file, joins the workers, and exits with the byte total.
//!
//! Concurrency shape: network-input dominated with almost no shared
//! memory — the syscall log, not the schedule log, carries the weight.

use crate::gbuild::{self, gen_blob};
use crate::harness::{expect_eq, Category, Size, VerifyError, WorkloadCase};
use dp_core::GuestSpec;
use dp_os::abi;
use dp_os::guest::Rt;
use dp_os::kernel::WorldConfig;
use dp_os::net::PeerBehavior;
use dp_vm::builder::ProgramBuilder;
use dp_vm::{BinOp, Reg, Width};
use std::sync::Arc;

/// Peer id the blob is served from.
const PEER: i64 = 1;
/// Receive chunk size.
const CHUNK: i64 = 1500;

/// Builds an `aget` instance.
pub fn build(threads: usize, size: Size) -> WorkloadCase {
    let blob = gen_blob(0x000D_014D, (256 * 1024 * size.factor()) as usize);
    let total = blob.len() as u64;

    let mut pb = ProgramBuilder::new();
    let rt = Rt::install(&mut pb);
    let g_done = pb.global("done_bytes", 8);
    let g_size = pb.global_data("blob_size", &total.to_le_bytes());
    let path_out = pb.global_data("path_out", b"dl.bin");
    let nthreads = threads as i64;

    // Worker(idx): fetch stripe [idx*total/n, (idx+1)*total/n).
    {
        let mut w = pb.function("worker");
        let recv_loop = w.label();
        let recv_done = w.label();
        w.mov(Reg(20), Reg(0)); // idx
        w.consti(Reg(9), g_size as i64);
        w.load(Reg(10), Reg(9), 0, Width::W8); // total
        w.mul(Reg(11), Reg(20), Reg(10));
        w.bin(BinOp::Divu, Reg(11), Reg(11), nthreads); // offset
        w.add(Reg(12), Reg(20), 1i64);
        w.mul(Reg(12), Reg(12), Reg(10));
        w.bin(BinOp::Divu, Reg(12), Reg(12), nthreads);
        w.sub(Reg(12), Reg(12), Reg(11)); // len
                                          // sock = connect(PEER)
        w.consti(Reg(0), PEER);
        w.syscall(abi::SYS_CONNECT);
        w.mov(Reg(21), Reg(0)); // sock
                                // request = (offset, len) le on the stack
        w.sub(Reg(22), Reg(31), 32i64);
        w.store(Reg(11), Reg(22), 0, Width::W8);
        w.store(Reg(12), Reg(22), 8, Width::W8);
        w.mov(Reg(0), Reg(21));
        w.mov(Reg(1), Reg(22));
        w.consti(Reg(2), 16);
        w.syscall(abi::SYS_SEND);
        // buf = alloc(len)
        w.mov(Reg(0), Reg(12));
        w.call(rt.alloc);
        w.mov(Reg(23), Reg(0)); // buf
        w.consti(Reg(24), 0); // received
        w.bind(recv_loop);
        w.bin(BinOp::Ltu, Reg(16), Reg(24), Reg(12));
        w.jz(Reg(16), recv_done);
        w.mov(Reg(0), Reg(21));
        w.add(Reg(1), Reg(23), Reg(24));
        w.consti(Reg(2), CHUNK);
        w.syscall(abi::SYS_RECV);
        w.jz(Reg(0), recv_done); // EOF
        w.add(Reg(24), Reg(24), Reg(0));
        w.jmp(recv_loop);
        w.bind(recv_done);
        w.mov(Reg(0), Reg(21));
        w.syscall(abi::SYS_SOCK_CLOSE);
        // Integrity pass over the stripe (aget verifies checksums): mix
        // every byte into an accumulator — the CPU work that makes the
        // download worth parallelizing.
        let ck_top = w.label();
        let ck_done = w.label();
        w.consti(Reg(26), 0); // i
        w.consti(Reg(27), 0); // acc
        w.bind(ck_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(26), Reg(24));
        w.jz(Reg(16), ck_done);
        w.add(Reg(17), Reg(23), Reg(26));
        w.load(Reg(17), Reg(17), 0, Width::W1);
        w.add(Reg(27), Reg(27), Reg(17));
        w.mul(Reg(27), Reg(27), 131i64);
        w.bin(BinOp::Xor, Reg(27), Reg(27), Reg(17));
        w.add(Reg(26), Reg(26), 1i64);
        w.jmp(ck_top);
        w.bind(ck_done);
        // Write stripe into the shared file at offset via a private fd.
        w.consti(Reg(0), path_out as i64);
        w.consti(Reg(1), 6);
        w.consti(Reg(2), abi::O_RDWR as i64);
        w.syscall(abi::SYS_OPEN);
        w.mov(Reg(25), Reg(0)); // fd
        w.mov(Reg(1), Reg(11)); // offset
        w.consti(Reg(2), abi::SEEK_SET as i64);
        w.syscall(abi::SYS_LSEEK);
        w.mov(Reg(0), Reg(25));
        w.mov(Reg(1), Reg(23));
        w.mov(Reg(2), Reg(24));
        w.syscall(abi::SYS_WRITE);
        w.mov(Reg(0), Reg(25));
        w.syscall(abi::SYS_CLOSE);
        w.consti(Reg(9), g_done as i64);
        w.fetch_add(Reg(16), Reg(9), dp_vm::Src::Reg(Reg(24)));
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");

    {
        let mut f = pb.function("main");
        // Pre-create the output file.
        f.consti(Reg(0), path_out as i64);
        f.consti(Reg(1), 6);
        f.consti(Reg(2), abi::O_WRONLY as i64);
        f.syscall(abi::SYS_OPEN);
        f.syscall(abi::SYS_CLOSE); // close(fd) — fd is already in r0
        gbuild::spawn_workers(&mut f, worker, threads);
        gbuild::join_workers(&mut f, threads);
        gbuild::exit_with_global(&mut f, g_done);
        f.finish();
    }

    let mut world = WorldConfig::default();
    world.net.peers.insert(
        PEER as u32,
        PeerBehavior::RangeSource { blob: blob.clone() },
    );
    let spec = GuestSpec::new("aget", Arc::new(pb.finish("main")), world);
    WorkloadCase {
        name: "aget",
        category: Category::Client,
        threads,
        spec,
        verify: Box::new(move |machine, kernel| -> Result<(), VerifyError> {
            let _ = kernel;
            expect_eq("downloaded bytes", machine.halted(), Some(total))?;
            let file = kernel
                .fs()
                .contents("dl.bin")
                .ok_or_else(|| crate::harness::verify_err("dl.bin missing"))?;
            if file != blob.as_slice() {
                return Err(crate::harness::verify_err(format!(
                    "dl.bin differs from blob ({} vs {} bytes)",
                    file.len(),
                    blob.len()
                )));
            }
            Ok(())
        }),
        expected_external_bytes: Some(16 * threads as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::exec::DirectExecutor;

    #[test]
    fn aget_downloads_and_reassembles() {
        for threads in [1, 2, 4] {
            let case = build(threads, Size::Small);
            let (mut machine, mut kernel) = case.spec.boot();
            DirectExecutor::default()
                .run(&mut machine, &mut kernel, 2_000_000_000)
                .expect("aget failed");
            (case.verify)(&machine, &kernel).expect("verification failed");
            assert!(kernel.net().bytes_in > 0, "no network input consumed");
        }
    }
}
