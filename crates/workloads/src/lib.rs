//! # dp-workloads — the benchmark suite
//!
//! Guest programs with the same concurrency structure as the paper's
//! evaluation suite, written against the `dp-vm` builder API and the
//! `dp-os` runtime library:
//!
//! | Paper benchmark | Here | Shape |
//! |---|---|---|
//! | pbzip2 | [`pcomp`] | work queue + per-block compression |
//! | pfscan | [`pfscan`] | partitioned read-only scan |
//! | aget | [`aget`] | parallel ranged download |
//! | Apache | [`webserve`] | accept loop + worker pool |
//! | MySQL | [`kvstore`] | fine-grained per-bucket locking |
//! | SPLASH-2 ocean | [`ocean`] | barrier-phased stencil |
//! | SPLASH-2 water | [`water`] | barrier-phased n-body |
//! | SPLASH-2 radix | [`radix`] | data-parallel sort with serial step |
//! | (rollback study) | [`racey`] | genuine data races |
//!
//! Every workload carries a verifier that checks the final world state
//! (exit code, file contents, bytes served) against a host-side reference,
//! so recording and replay are continuously cross-checked against ground
//! truth. Build instances via [`harness::suite`] or the per-module
//! `build` functions.

#![warn(missing_docs)]

pub mod aget;
pub mod gbuild;
pub mod harness;
pub mod kvstore;
pub mod ocean;
pub mod pcomp;
pub mod pfscan;
pub mod racey;
pub mod radix;
pub mod water;
pub mod webserve;

pub use harness::{
    find, mixed_suite, racy_suite, suite, Category, Size, VerifyError, WorkloadCase,
};
