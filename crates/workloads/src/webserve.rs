//! `webserve` — an Apache-style accept/worker-pool server.
//!
//! Main listens on a port, accepts a scripted sequence of client
//! connections arriving over virtual time, and pushes the connection fds
//! through the work queue. Each of the `N` workers pops a connection,
//! receives a request naming one of the site's files, reads the file,
//! computes a digest over it (the "dynamic content" work), sends the file
//! back, and closes the connection. Main pushes sentinels, joins, and
//! exits with the number of requests served.
//!
//! Concurrency shape: blocking accepts driven by client arrival times,
//! queue handoffs, file reads, and response sends — the syscall-heavy
//! server profile (the paper's Apache/MySQL group).

use crate::gbuild::{self, gen_text};
use crate::harness::{expect_eq, Category, Size, VerifyError, WorkloadCase};
use dp_core::GuestSpec;
use dp_os::abi;
use dp_os::guest::{queue_bytes, Rt};
use dp_os::kernel::WorldConfig;
use dp_os::net::ClientSpec;
use dp_vm::builder::ProgramBuilder;
use dp_vm::{BinOp, Reg, Width};
use std::sync::Arc;

/// Server port.
const PORT: i64 = 80;
/// Queue sentinel.
const SENTINEL: i64 = 0x7fff_ffff;
/// Number of distinct site files.
const NFILES: usize = 6;

fn file_name(i: usize) -> String {
    format!("site/page{i}.html")
}

/// Builds a `webserve` instance.
pub fn build(threads: usize, size: Size) -> WorkloadCase {
    let nrequests = (10 * size.factor()) as usize * threads;
    let files: Vec<Vec<u8>> = (0..NFILES)
        .map(|i| gen_text(0xAB0 + i as u64, 3000 + i * 700))
        .collect();
    // Client i requests file (i*7+3) % NFILES, arriving every 25k cycles.
    let pick = |i: usize| (i * 7 + 3) % NFILES;
    let clients: Vec<ClientSpec> = (0..nrequests)
        .map(|i| ClientSpec {
            arrival: 5_000 + i as u64 * 25_000,
            port: PORT as u64,
            requests: vec![(pick(i) as u64).to_le_bytes().to_vec()],
        })
        .collect();
    let expected_out: u64 = (0..nrequests).map(|i| files[pick(i)].len() as u64).sum();

    let mut pb = ProgramBuilder::new();
    let rt = Rt::install(&mut pb);
    let g_q = pb.global("queue", queue_bytes(32));
    let g_served = pb.global("served", 8);
    // File-name table: NFILES fixed-width 15-byte names.
    let name_len = file_name(0).len() as i64;
    let names: Vec<u8> = (0..NFILES)
        .flat_map(|i| file_name(i).into_bytes())
        .collect();
    let g_names = pb.global_data("names", &names);

    // Worker: pop connection, serve one request.
    {
        let mut w = pb.function("worker");
        let top = w.label();
        let done = w.label();
        w.bind(top);
        w.consti(Reg(0), g_q as i64);
        w.call(rt.queue_pop);
        w.mov(Reg(20), Reg(0)); // conn fd
        w.bin(BinOp::Eq, Reg(1), Reg(20), SENTINEL);
        w.jnz(Reg(1), done);
        // recv request (8 bytes: file index)
        w.sub(Reg(21), Reg(31), 16i64); // stack scratch
        w.mov(Reg(0), Reg(20));
        w.mov(Reg(1), Reg(21));
        w.consti(Reg(2), 8);
        w.syscall(abi::SYS_RECV);
        w.load(Reg(22), Reg(21), 0, Width::W8); // index
                                                // open(names + index*name_len)
        w.mul(Reg(0), Reg(22), name_len);
        w.add(Reg(0), Reg(0), gbuild_addr(g_names));
        w.consti(Reg(1), name_len);
        w.consti(Reg(2), abi::O_RDONLY as i64);
        w.syscall(abi::SYS_OPEN);
        w.mov(Reg(23), Reg(0)); // file fd
        w.syscall(abi::SYS_FSIZE); // r0 = fd
        w.mov(Reg(24), Reg(0)); // size
        w.mov(Reg(0), Reg(24));
        w.call(rt.alloc);
        w.mov(Reg(25), Reg(0)); // buf
        w.mov(Reg(0), Reg(23));
        w.mov(Reg(1), Reg(25));
        w.mov(Reg(2), Reg(24));
        w.syscall(abi::SYS_READ);
        w.mov(Reg(0), Reg(23));
        w.syscall(abi::SYS_CLOSE);
        // "Dynamic content": checksum the page (compute per request).
        let sum = w.label();
        let sum_done = w.label();
        w.consti(Reg(26), 0); // i
        w.consti(Reg(27), 0); // acc
        w.bind(sum);
        w.bin(BinOp::Ltu, Reg(16), Reg(26), Reg(24));
        w.jz(Reg(16), sum_done);
        w.add(Reg(17), Reg(25), Reg(26));
        w.load(Reg(17), Reg(17), 0, Width::W1);
        w.add(Reg(27), Reg(27), Reg(17));
        w.mul(Reg(27), Reg(27), 31i64);
        w.add(Reg(26), Reg(26), 1i64);
        w.jmp(sum);
        w.bind(sum_done);
        // send the page
        w.mov(Reg(0), Reg(20));
        w.mov(Reg(1), Reg(25));
        w.mov(Reg(2), Reg(24));
        w.syscall(abi::SYS_SEND);
        w.mov(Reg(0), Reg(20));
        w.syscall(abi::SYS_SOCK_CLOSE);
        w.consti(Reg(9), g_served as i64);
        w.fetch_add(Reg(16), Reg(9), 1i64);
        w.jmp(top);
        w.bind(done);
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");

    {
        let mut f = pb.function("main");
        f.consti(Reg(0), g_q as i64);
        f.consti(Reg(1), 32);
        f.call(rt.queue_init);
        f.consti(Reg(0), PORT);
        f.syscall(abi::SYS_LISTEN);
        f.mov(Reg(20), Reg(0)); // listener
        gbuild::spawn_workers(&mut f, worker, threads);
        // Accept loop.
        let acc_top = f.label();
        let acc_done = f.label();
        f.consti(Reg(21), 0);
        f.bind(acc_top);
        f.bin(BinOp::Ltu, Reg(22), Reg(21), nrequests as i64);
        f.jz(Reg(22), acc_done);
        f.mov(Reg(0), Reg(20));
        f.syscall(abi::SYS_ACCEPT);
        f.mov(Reg(1), Reg(0));
        f.consti(Reg(0), g_q as i64);
        f.call(rt.queue_push);
        f.add(Reg(21), Reg(21), 1i64);
        f.jmp(acc_top);
        f.bind(acc_done);
        for _ in 0..threads {
            f.consti(Reg(0), g_q as i64);
            f.consti(Reg(1), SENTINEL);
            f.call(rt.queue_push);
        }
        gbuild::join_workers(&mut f, threads);
        gbuild::exit_with_global(&mut f, g_served);
        f.finish();
    }

    let mut world = WorldConfig {
        files: (0..NFILES)
            .map(|i| (file_name(i), files[i].clone()))
            .collect(),
        ..WorldConfig::default()
    };
    world.net.clients = clients;
    let spec = GuestSpec::new("webserve", Arc::new(pb.finish("main")), world);
    let nreq = nrequests as u64;
    WorkloadCase {
        name: "webserve",
        category: Category::Server,
        threads,
        spec,
        verify: Box::new(move |machine, _kernel| -> Result<(), VerifyError> {
            expect_eq("requests served", machine.halted(), Some(nreq))
        }),
        expected_external_bytes: Some(expected_out),
    }
}

/// Helper: a `Src` immediate for a global address (readability shim).
fn gbuild_addr(addr: u64) -> i64 {
    addr as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::exec::DirectExecutor;

    #[test]
    fn webserve_serves_all_requests() {
        for threads in [1, 2, 4] {
            let case = build(threads, Size::Small);
            let (mut machine, mut kernel) = case.spec.boot();
            DirectExecutor::default()
                .run(&mut machine, &mut kernel, 2_000_000_000)
                .expect("webserve failed");
            (case.verify)(&machine, &kernel).expect("verification failed");
            assert_eq!(kernel.net().pending_clients(), 0);
            assert_eq!(Some(kernel.net().bytes_out), case.expected_external_bytes);
        }
    }
}
