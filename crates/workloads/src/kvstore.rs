//! `kvstore` — a MySQL-stand-in: a bucketed in-memory key/value store with
//! per-bucket locks under a mixed get/put workload.
//!
//! Each worker drives its own deterministic client stream (guest-side
//! xorshift): pick a key, hash to a bucket, lock the bucket, linear-scan
//! the slots, read or upsert, unlock. The store's *contents* depend on the
//! cross-thread interleaving (which client's put lands last), but the
//! program is data-race-free: every access happens under the bucket lock,
//! so recording must never diverge while the final state is genuinely
//! schedule-dependent — the property that makes lock-based servers the
//! interesting case for record/replay.
//!
//! Concurrency shape: fine-grained locking with real contention, little
//! I/O — sync-order hints carry the weight.

use crate::gbuild;
use crate::harness::{expect_eq, Category, Size, VerifyError, WorkloadCase};
use dp_core::GuestSpec;
use dp_os::guest::Rt;
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::{BinOp, Reg, Width};
use std::sync::Arc;

/// Buckets in the table.
const BUCKETS: u64 = 64;
/// Slots per bucket.
const CAP: u64 = 8;
/// Key space (≤ BUCKETS*CAP/2 keeps overflow rare).
const KEYSPACE: u64 = 256;
/// One in `CROSS` operations targets the shared key range; the rest stay
/// in the worker's own range (clients mostly touch their own rows, with
/// occasional cross-traffic — the contention profile of a real server).
const CROSS: u64 = 8;
/// Bucket layout: lock, count, then CAP (key, value) pairs.
const BUCKET_BYTES: u64 = 16 + CAP * 16;

/// Builds a `kvstore` instance.
pub fn build(threads: usize, size: Size) -> WorkloadCase {
    let ops_per_worker = 2_000 * size.factor();

    let mut pb = ProgramBuilder::new();
    let rt = Rt::install(&mut pb);
    let g_table = pb.global("table", BUCKETS * BUCKET_BYTES);
    let g_ops = pb.global("ops_done", 8);
    let g_gets = pb.global("get_hits", 8);

    // Worker(idx): ops_per_worker operations from stream seeded by idx.
    {
        let mut w = pb.function("worker");
        let op_top = w.label();
        let op_done = w.label();
        let scan = w.label();
        let scan_miss = w.label();
        let found = w.label();
        let do_put = w.label();
        let insert = w.label();
        let skip_insert = w.label();
        let op_end = w.label();
        let get_missed = w.label();

        // r20 idx, r21 rng state ptr (stack), r22 op counter, r23 hits
        w.mov(Reg(20), Reg(0));
        w.sub(Reg(21), Reg(31), 16i64);
        w.add(Reg(16), Reg(20), 1i64);
        w.mul(Reg(16), Reg(16), 0x9E3779B9i64);
        w.add(Reg(16), Reg(16), 0x51ED2701i64);
        w.store(Reg(16), Reg(21), 0, Width::W8);
        w.consti(Reg(22), 0);
        w.consti(Reg(23), 0);

        w.bind(op_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(22), ops_per_worker as i64);
        w.jz(Reg(16), op_done);
        // r = xorshift(state)
        w.mov(Reg(0), Reg(21));
        w.call(rt.xorshift);
        w.mov(Reg(24), Reg(0)); // r
                                // "Query processing": mix the request through a few hash rounds
                                // before touching the store (the compute a real server does per
                                // statement).
        let qp_top = w.label();
        let qp_done = w.label();
        w.consti(Reg(14), 0);
        w.mov(Reg(13), Reg(24));
        w.bind(qp_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(14), 24i64);
        w.jz(Reg(16), qp_done);
        w.mul(Reg(13), Reg(13), 0x100000001B3u64 as i64);
        w.bin(BinOp::Xor, Reg(13), Reg(13), Reg(24));
        w.bin(BinOp::Shr, Reg(15), Reg(13), 29i64);
        w.add(Reg(13), Reg(13), Reg(15));
        w.add(Reg(14), Reg(14), 1i64);
        w.jmp(qp_top);
        w.bind(qp_done);
        // Key choice: mostly our own shard, occasionally cross-traffic.
        let shard = KEYSPACE as i64 / 8; // per-worker shard width (<= 8 workers)
        let cross = w.label();
        let key_done = w.label();
        w.bin(BinOp::Remu, Reg(15), Reg(24), CROSS as i64);
        w.jz(Reg(15), cross);
        w.bin(BinOp::Remu, Reg(25), Reg(24), shard);
        w.mul(Reg(15), Reg(20), shard);
        w.add(Reg(25), Reg(25), Reg(15));
        w.jmp(key_done);
        w.bind(cross);
        w.bin(BinOp::Remu, Reg(25), Reg(24), KEYSPACE as i64);
        w.bind(key_done);
        w.bin(BinOp::Remu, Reg(26), Reg(25), BUCKETS as i64);
        w.mul(Reg(26), Reg(26), BUCKET_BYTES as i64);
        w.add(Reg(26), Reg(26), gaddr(g_table)); // bucket base
                                                 // lock(bucket)
        w.mov(Reg(0), Reg(26));
        w.call(rt.mutex_lock);
        // scan slots for key
        w.load(Reg(27), Reg(26), 8, Width::W8); // count
        w.consti(Reg(17), 0); // slot i
        w.bind(scan);
        w.bin(BinOp::Ltu, Reg(16), Reg(17), Reg(27));
        w.jz(Reg(16), scan_miss);
        w.mul(Reg(18), Reg(17), 16i64);
        w.add(Reg(18), Reg(18), Reg(26));
        w.load(Reg(19), Reg(18), 16, Width::W8); // slot key
        w.bin(BinOp::Eq, Reg(16), Reg(19), Reg(25));
        w.jnz(Reg(16), found);
        w.add(Reg(17), Reg(17), 1i64);
        w.jmp(scan);

        w.bind(found);
        // r18 = slot base (key at +16, value at +24). op = bit 33 of r.
        w.bin(BinOp::Shr, Reg(16), Reg(24), 33i64);
        w.bin(BinOp::And, Reg(16), Reg(16), 1i64);
        w.jnz(Reg(16), do_put);
        // get: read value, count a hit
        w.load(Reg(19), Reg(18), 24, Width::W8);
        w.add(Reg(23), Reg(23), 1i64);
        w.jmp(op_end);
        w.bind(do_put);
        w.store(Reg(24), Reg(18), 24, Width::W8); // value = r
        w.jmp(op_end);

        w.bind(scan_miss);
        // Key absent. Put inserts if space; get misses.
        w.bin(BinOp::Shr, Reg(16), Reg(24), 33i64);
        w.bin(BinOp::And, Reg(16), Reg(16), 1i64);
        w.jz(Reg(16), get_missed);
        w.bind(insert);
        w.bin(BinOp::Ltu, Reg(16), Reg(27), CAP as i64);
        w.jz(Reg(16), skip_insert);
        w.mul(Reg(18), Reg(27), 16i64);
        w.add(Reg(18), Reg(18), Reg(26));
        w.store(Reg(25), Reg(18), 16, Width::W8);
        w.store(Reg(24), Reg(18), 24, Width::W8);
        w.add(Reg(27), Reg(27), 1i64);
        w.store(Reg(27), Reg(26), 8, Width::W8);
        w.bind(skip_insert);
        w.bind(get_missed);
        w.bind(op_end);
        // unlock(bucket)
        w.mov(Reg(0), Reg(26));
        w.call(rt.mutex_unlock);
        w.add(Reg(22), Reg(22), 1i64);
        w.jmp(op_top);

        w.bind(op_done);
        w.consti(Reg(9), g_ops as i64);
        w.fetch_add(Reg(16), Reg(9), dp_vm::Src::Reg(Reg(22)));
        w.consti(Reg(9), g_gets as i64);
        w.fetch_add(Reg(16), Reg(9), dp_vm::Src::Reg(Reg(23)));
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");

    {
        let mut f = pb.function("main");
        gbuild::spawn_workers(&mut f, worker, threads);
        gbuild::join_workers(&mut f, threads);
        gbuild::exit_with_global(&mut f, g_ops);
        f.finish();
    }

    let spec = GuestSpec::new(
        "kvstore",
        Arc::new(pb.finish("main")),
        WorldConfig::default(),
    );
    let expected_ops = ops_per_worker * threads as u64;
    WorkloadCase {
        name: "kvstore",
        category: Category::Server,
        threads,
        spec,
        verify: Box::new(move |machine, _kernel| -> Result<(), VerifyError> {
            expect_eq("operations completed", machine.halted(), Some(expected_ops))
        }),
        expected_external_bytes: None,
    }
}

fn gaddr(addr: u64) -> i64 {
    addr as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::exec::DirectExecutor;

    #[test]
    fn kvstore_completes_all_ops() {
        for threads in [1, 2, 4] {
            let case = build(threads, Size::Small);
            let (mut machine, mut kernel) = case.spec.boot();
            DirectExecutor::default()
                .run(&mut machine, &mut kernel, 2_000_000_000)
                .expect("kvstore failed");
            (case.verify)(&machine, &kernel).expect("verification failed");
        }
    }

    #[test]
    fn table_fits_in_globals() {
        // Layout sanity: bucket stride covers lock+count+slots.
        #[allow(clippy::assertions_on_constants)]
        {
            assert_eq!(BUCKET_BYTES, 16 + CAP * 16);
            assert!(KEYSPACE <= BUCKETS * CAP);
        }
    }
}
