//! `water` — a SPLASH-2-style n-body molecular-dynamics kernel.
//!
//! `P` particles in fixed-point 2D. Each timestep has two barrier-separated
//! phases: every worker computes pairwise interactions for its particle
//! range against *all* particle positions (O(P²/N) reads), then integrates
//! its own particles (writes). Deterministic given the initial conditions,
//! so the final checksum is verified against a host reference.
//!
//! Concurrency shape: compute-dominated with all-to-all read sharing and
//! two barriers per step.

use crate::gbuild;
use crate::harness::{expect_eq, Category, Size, VerifyError, WorkloadCase};
use dp_core::GuestSpec;
use dp_os::guest::Rt;
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::{BinOp, Reg, Width};
use std::sync::Arc;

/// Particle count.
const P: u64 = 96;

/// The interaction force used by both guest and reference:
/// `f(dx) = dx / (|dx|/1024 + 16)` — smooth, integer, zero-safe.
fn force(dx: i64) -> i64 {
    dx / (dx.unsigned_abs() as i64 / 1024 + 16)
}

/// Host reference simulation returning the checksum.
pub fn reference(steps: u64) -> u64 {
    let (mut x, mut y, mut vx, mut vy) = initial();
    let n = P as usize;
    for _ in 0..steps {
        let mut ax = vec![0i64; n];
        let mut ay = vec![0i64; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    ax[i] = ax[i].wrapping_add(force(x[j].wrapping_sub(x[i])));
                    ay[i] = ay[i].wrapping_add(force(y[j].wrapping_sub(y[i])));
                }
            }
        }
        for i in 0..n {
            vx[i] = vx[i].wrapping_add(ax[i] >> 4);
            vy[i] = vy[i].wrapping_add(ay[i] >> 4);
            x[i] = x[i].wrapping_add(vx[i] >> 4);
            y[i] = y[i].wrapping_add(vy[i] >> 4);
        }
    }
    let mut sum = 0u64;
    for i in 0..n {
        sum = sum
            .wrapping_add(x[i] as u64)
            .wrapping_mul(31)
            .wrapping_add(y[i] as u64);
    }
    sum
}

fn initial() -> (Vec<i64>, Vec<i64>, Vec<i64>, Vec<i64>) {
    let mut rng = gbuild::XorShift::new(0x3A7E5);
    let n = P as usize;
    let pos = |rng: &mut gbuild::XorShift| (rng.next_u64() % 2_000_000) as i64 - 1_000_000;
    let x: Vec<i64> = (0..n).map(|_| pos(&mut rng)).collect();
    let y: Vec<i64> = (0..n).map(|_| pos(&mut rng)).collect();
    (x, y, vec![0; n], vec![0; n])
}

/// Builds a `water` instance.
pub fn build(threads: usize, size: Size) -> WorkloadCase {
    let steps = 4 * size.factor();
    let expected = reference(steps);
    let (x, y, vx, vy) = initial();
    let pack = |v: &[i64]| -> Vec<u8> { v.iter().flat_map(|w| w.to_le_bytes()).collect() };

    let mut pb = ProgramBuilder::new();
    let rt = Rt::install(&mut pb);
    let g_x = pb.global_data("px", &pack(&x));
    let g_y = pb.global_data("py", &pack(&y));
    let g_vx = pb.global_data("pvx", &pack(&vx));
    let g_vy = pb.global_data("pvy", &pack(&vy));
    let g_ax = pb.global("pax", P * 8);
    let g_ay = pb.global("pay", P * 8);
    let g_barrier = pb.global("barrier", 16);
    let g_sum = pb.global("checksum", 8);
    let nthreads = threads as i64;

    // force(dx in r0) -> r0, preserves r1..: uses r2,r3.
    {
        let mut f = pb.function("force");
        let neg = f.label();
        let done = f.label();
        f.mov(Reg(2), Reg(0));
        f.bin(BinOp::Lts, Reg(3), Reg(2), 0i64);
        f.jnz(Reg(3), neg);
        f.mov(Reg(3), Reg(2));
        f.jmp(done);
        f.bind(neg);
        f.un(dp_vm::UnOp::Neg, Reg(3), Reg(2));
        f.bind(done);
        // r3 = |dx|; f = dx / (|dx|/1024 + 16)
        f.bin(BinOp::Divs, Reg(3), Reg(3), 1024i64);
        f.add(Reg(3), Reg(3), 16i64);
        f.bin(BinOp::Divs, Reg(0), Reg(2), Reg(3));
        f.ret();
        f.finish();
    }
    let force_fn = pb.declare("force");

    {
        let mut w = pb.function("worker");
        let step_top = w.label();
        let step_done = w.label();
        let i_top = w.label();
        let i_done = w.label();
        let j_top = w.label();
        let j_done = w.label();
        let j_skip = w.label();
        let int_top = w.label();
        let int_done = w.label();
        let sum_top = w.label();
        let sum_done = w.label();

        // r20 idx, r21 step, r22 start, r23 end (particle range)
        w.mov(Reg(20), Reg(0));
        w.mul(Reg(22), Reg(20), P as i64);
        w.bin(BinOp::Divu, Reg(22), Reg(22), nthreads);
        w.add(Reg(23), Reg(20), 1i64);
        w.mul(Reg(23), Reg(23), P as i64);
        w.bin(BinOp::Divu, Reg(23), Reg(23), nthreads);
        w.consti(Reg(21), 0);

        w.bind(step_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(21), steps as i64);
        w.jz(Reg(16), step_done);
        // Phase 1: accumulate accelerations for my particles.
        w.mov(Reg(24), Reg(22)); // i
        w.bind(i_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(24), Reg(23));
        w.jz(Reg(16), i_done);
        w.mul(Reg(25), Reg(24), 8i64); // i*8
        w.consti(Reg(26), 0); // axi
        w.consti(Reg(27), 0); // ayi
        w.consti(Reg(28), 0); // j
        w.bind(j_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(28), P as i64);
        w.jz(Reg(16), j_done);
        w.bin(BinOp::Eq, Reg(16), Reg(28), Reg(24));
        w.jnz(Reg(16), j_skip);
        w.mul(Reg(29), Reg(28), 8i64);
        // dx = x[j] - x[i]
        w.consti(Reg(17), g_x as i64);
        w.add(Reg(18), Reg(17), Reg(29));
        w.load(Reg(0), Reg(18), 0, Width::W8);
        w.add(Reg(18), Reg(17), Reg(25));
        w.load(Reg(18), Reg(18), 0, Width::W8);
        w.sub(Reg(0), Reg(0), Reg(18));
        w.call(force_fn);
        w.add(Reg(26), Reg(26), Reg(0));
        // dy
        w.consti(Reg(17), g_y as i64);
        w.add(Reg(18), Reg(17), Reg(29));
        w.load(Reg(0), Reg(18), 0, Width::W8);
        w.add(Reg(18), Reg(17), Reg(25));
        w.load(Reg(18), Reg(18), 0, Width::W8);
        w.sub(Reg(0), Reg(0), Reg(18));
        w.call(force_fn);
        w.add(Reg(27), Reg(27), Reg(0));
        w.bind(j_skip);
        w.add(Reg(28), Reg(28), 1i64);
        w.jmp(j_top);
        w.bind(j_done);
        w.consti(Reg(17), g_ax as i64);
        w.add(Reg(17), Reg(17), Reg(25));
        w.store(Reg(26), Reg(17), 0, Width::W8);
        w.consti(Reg(17), g_ay as i64);
        w.add(Reg(17), Reg(17), Reg(25));
        w.store(Reg(27), Reg(17), 0, Width::W8);
        w.add(Reg(24), Reg(24), 1i64);
        w.jmp(i_top);
        w.bind(i_done);
        // barrier, then integrate my particles.
        w.consti(Reg(0), g_barrier as i64);
        w.consti(Reg(1), nthreads);
        w.call(rt.barrier_wait);
        w.mov(Reg(24), Reg(22));
        w.bind(int_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(24), Reg(23));
        w.jz(Reg(16), int_done);
        w.mul(Reg(25), Reg(24), 8i64);
        for (gv, ga, gp) in [(g_vx, g_ax, g_x), (g_vy, g_ay, g_y)] {
            // v += a >> 4 ; p += v >> 4
            w.consti(Reg(17), ga as i64);
            w.add(Reg(17), Reg(17), Reg(25));
            w.load(Reg(18), Reg(17), 0, Width::W8);
            w.bin(BinOp::Sar, Reg(18), Reg(18), 4i64);
            w.consti(Reg(17), gv as i64);
            w.add(Reg(17), Reg(17), Reg(25));
            w.load(Reg(19), Reg(17), 0, Width::W8);
            w.add(Reg(19), Reg(19), Reg(18));
            w.store(Reg(19), Reg(17), 0, Width::W8);
            w.bin(BinOp::Sar, Reg(19), Reg(19), 4i64);
            w.consti(Reg(17), gp as i64);
            w.add(Reg(17), Reg(17), Reg(25));
            w.load(Reg(18), Reg(17), 0, Width::W8);
            w.add(Reg(18), Reg(18), Reg(19));
            w.store(Reg(18), Reg(17), 0, Width::W8);
        }
        w.add(Reg(24), Reg(24), 1i64);
        w.jmp(int_top);
        w.bind(int_done);
        w.consti(Reg(0), g_barrier as i64);
        w.consti(Reg(1), nthreads);
        w.call(rt.barrier_wait);
        w.add(Reg(21), Reg(21), 1i64);
        w.jmp(step_top);

        w.bind(step_done);
        // Worker 0 computes the (order-sensitive) checksum alone.
        let not_zero = w.label();
        w.jnz(Reg(20), not_zero);
        w.consti(Reg(26), 0); // sum
        w.consti(Reg(24), 0); // i
        w.bind(sum_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(24), P as i64);
        w.jz(Reg(16), sum_done);
        w.mul(Reg(25), Reg(24), 8i64);
        w.consti(Reg(17), g_x as i64);
        w.add(Reg(17), Reg(17), Reg(25));
        w.load(Reg(18), Reg(17), 0, Width::W8);
        w.add(Reg(26), Reg(26), Reg(18));
        w.mul(Reg(26), Reg(26), 31i64);
        w.consti(Reg(17), g_y as i64);
        w.add(Reg(17), Reg(17), Reg(25));
        w.load(Reg(18), Reg(17), 0, Width::W8);
        w.add(Reg(26), Reg(26), Reg(18));
        w.add(Reg(24), Reg(24), 1i64);
        w.jmp(sum_top);
        w.bind(sum_done);
        w.consti(Reg(9), g_sum as i64);
        w.store(Reg(26), Reg(9), 0, Width::W8);
        w.bind(not_zero);
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");

    {
        let mut f = pb.function("main");
        gbuild::spawn_workers(&mut f, worker, threads);
        gbuild::join_workers(&mut f, threads);
        gbuild::exit_with_global(&mut f, g_sum);
        f.finish();
    }

    let spec = GuestSpec::new("water", Arc::new(pb.finish("main")), WorldConfig::default());
    WorkloadCase {
        name: "water",
        category: Category::Scientific,
        threads,
        spec,
        verify: Box::new(move |machine, _kernel| -> Result<(), VerifyError> {
            expect_eq("n-body checksum", machine.halted(), Some(expected))
        }),
        expected_external_bytes: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::exec::DirectExecutor;

    #[test]
    fn water_matches_reference() {
        for threads in [1, 2, 4] {
            let case = build(threads, Size::Small);
            let (mut machine, mut kernel) = case.spec.boot();
            DirectExecutor::default()
                .run(&mut machine, &mut kernel, 2_000_000_000)
                .expect("water failed");
            (case.verify)(&machine, &kernel).expect("verification failed");
        }
    }

    #[test]
    fn force_is_odd_and_bounded() {
        assert_eq!(force(0), 0);
        assert_eq!(force(100), -force(-100));
        assert!(force(1_000_000) < 1_000_000);
    }
}
