//! `pfscan` — a parallel file scanner (parallel `grep -c`).
//!
//! Main reads the input file into memory and statically partitions it;
//! each worker counts (overlapping) occurrences of a fixed pattern whose
//! match *starts* inside its chunk, then atomically adds to a global
//! total. Main joins and exits with the count.
//!
//! Concurrency shape: embarrassingly parallel read-only compute with one
//! atomic at the very end — near-zero sync, high memory traffic.

use crate::gbuild::{self, gen_text};
use crate::harness::{expect_eq, Category, Size, VerifyError, WorkloadCase};
use dp_core::GuestSpec;
use dp_os::abi;
use dp_os::guest::Rt;
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::{BinOp, Reg, Width};
use std::sync::Arc;

/// The pattern scanned for.
pub const PATTERN: &[u8] = b"ee";

/// Counts occurrences whose start lies in `[0, hay_len)`, allowing the
/// match to extend past the end of the slice into `tail` (chunk overlap
/// semantics identical to the guest's).
pub fn count_starts(hay: &[u8], needle: &[u8]) -> u64 {
    let mut count = 0;
    if hay.len() < needle.len() {
        return 0;
    }
    for i in 0..=hay.len() - needle.len() {
        if &hay[i..i + needle.len()] == needle {
            count += 1;
        }
    }
    count
}

/// Builds a `pfscan` instance.
pub fn build(threads: usize, size: Size) -> WorkloadCase {
    let input = gen_text(0x5CA7, (192 * 1024 * size.factor()) as usize);
    let expected = count_starts(&input, PATTERN);

    let mut pb = ProgramBuilder::new();
    let rt = Rt::install(&mut pb);
    let g_input = pb.global("input_ptr", 8);
    let g_size = pb.global("input_size", 8);
    let g_total = pb.global("total", 8);
    let g_pattern = pb.global_data("pattern", PATTERN);
    let path_in = pb.global_data("path_in", b"corpus.txt");
    let nthreads = threads as i64;

    // Worker(idx): scan [idx*size/n, (idx+1)*size/n) for match starts.
    {
        let mut w = pb.function("worker");
        let outer = w.label();
        let cmp = w.label();
        let nomatch = w.label();
        let matched = w.label();
        let done = w.label();
        w.mov(Reg(20), Reg(0)); // idx
        w.consti(Reg(9), g_input as i64);
        w.load(Reg(10), Reg(9), 0, Width::W8); // base
        w.consti(Reg(9), g_size as i64);
        w.load(Reg(11), Reg(9), 0, Width::W8); // size
                                               // start = idx*size/n ; end = (idx+1)*size/n
        w.mul(Reg(12), Reg(20), Reg(11));
        w.bin(BinOp::Divu, Reg(12), Reg(12), nthreads);
        w.add(Reg(13), Reg(20), 1i64);
        w.mul(Reg(13), Reg(13), Reg(11));
        w.bin(BinOp::Divu, Reg(13), Reg(13), nthreads);
        // last valid start overall = size - plen
        w.sub(Reg(14), Reg(11), PATTERN.len() as i64);
        w.add(Reg(14), Reg(14), 1i64); // exclusive bound on starts
        w.bin(BinOp::Minu, Reg(13), Reg(13), Reg(14));
        w.consti(Reg(15), 0); // local count
                              // for i in start..end
        w.bind(outer);
        w.bin(BinOp::Ltu, Reg(16), Reg(12), Reg(13));
        w.jz(Reg(16), done);
        // compare pattern at base+i
        w.consti(Reg(17), 0); // j
        w.bind(cmp);
        w.bin(BinOp::Ltu, Reg(16), Reg(17), PATTERN.len() as i64);
        w.jz(Reg(16), matched);
        w.add(Reg(18), Reg(10), Reg(12));
        w.add(Reg(18), Reg(18), Reg(17));
        w.load(Reg(18), Reg(18), 0, Width::W1);
        w.consti(Reg(19), g_pattern as i64);
        w.add(Reg(19), Reg(19), Reg(17));
        w.load(Reg(19), Reg(19), 0, Width::W1);
        w.bin(BinOp::Ne, Reg(16), Reg(18), Reg(19));
        w.jnz(Reg(16), nomatch);
        w.add(Reg(17), Reg(17), 1i64);
        w.jmp(cmp);
        w.bind(matched);
        w.add(Reg(15), Reg(15), 1i64);
        w.bind(nomatch);
        w.add(Reg(12), Reg(12), 1i64);
        w.jmp(outer);
        w.bind(done);
        w.consti(Reg(9), g_total as i64);
        w.fetch_add(Reg(16), Reg(9), dp_vm::Src::Reg(Reg(15)));
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");

    {
        let mut f = pb.function("main");
        f.consti(Reg(0), path_in as i64);
        f.consti(Reg(1), 10); // strlen("corpus.txt")
        f.consti(Reg(2), abi::O_RDONLY as i64);
        f.syscall(abi::SYS_OPEN);
        f.mov(Reg(20), Reg(0));
        f.syscall(abi::SYS_FSIZE);
        f.mov(Reg(21), Reg(0));
        f.consti(Reg(9), g_size as i64);
        f.store(Reg(21), Reg(9), 0, Width::W8);
        f.mov(Reg(0), Reg(21));
        f.call(rt.alloc);
        f.mov(Reg(22), Reg(0));
        f.consti(Reg(9), g_input as i64);
        f.store(Reg(22), Reg(9), 0, Width::W8);
        f.mov(Reg(0), Reg(20));
        f.mov(Reg(1), Reg(22));
        f.mov(Reg(2), Reg(21));
        f.syscall(abi::SYS_READ);
        f.mov(Reg(0), Reg(20));
        f.syscall(abi::SYS_CLOSE);
        gbuild::spawn_workers(&mut f, worker, threads);
        gbuild::join_workers(&mut f, threads);
        gbuild::exit_with_global(&mut f, g_total);
        f.finish();
    }

    let world = WorldConfig {
        files: vec![("corpus.txt".to_string(), input)],
        ..WorldConfig::default()
    };
    let spec = GuestSpec::new("pfscan", Arc::new(pb.finish("main")), world);
    WorkloadCase {
        name: "pfscan",
        category: Category::Client,
        threads,
        spec,
        verify: Box::new(move |machine, _kernel| -> Result<(), VerifyError> {
            expect_eq("match count", machine.halted(), Some(expected))
        }),
        expected_external_bytes: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::exec::DirectExecutor;

    #[test]
    fn pfscan_counts_match_reference() {
        for threads in [1, 2, 4] {
            let case = build(threads, Size::Small);
            let (mut machine, mut kernel) = case.spec.boot();
            DirectExecutor::default()
                .run(&mut machine, &mut kernel, 2_000_000_000)
                .expect("pfscan failed");
            (case.verify)(&machine, &kernel).expect("verification failed");
        }
    }

    #[test]
    fn host_counter_handles_edges() {
        assert_eq!(count_starts(b"eee", b"ee"), 2); // overlapping starts
        assert_eq!(count_starts(b"e", b"ee"), 0);
        assert_eq!(count_starts(b"", b"ee"), 0);
    }
}
