//! `pcomp` — a pbzip2-style parallel block compressor.
//!
//! Structure mirrors pbzip2: the main thread reads the input file, splits
//! it into fixed-size blocks, and feeds block indices through a blocking
//! work queue to `N` worker threads; each worker compresses its block (RLE)
//! into a private heap buffer; main then writes the compressed blocks to
//! the output file *in order* and exits with the total compressed size.
//!
//! Concurrency shape: a contended MPMC queue (mutex + futex), bulk private
//! compute per block, and file I/O at the edges — the compute-heavy,
//! coarse-sync profile that gives DoublePlay its best numbers in the paper.

use crate::gbuild::{self, gen_blob, rle_encode};
use crate::harness::{expect_eq, Category, Size, WorkloadCase};
use dp_core::GuestSpec;
use dp_os::abi;
use dp_os::guest::{queue_bytes, Rt};
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::{BinOp, Reg, Width};
use std::sync::Arc;

/// Block size in bytes.
const BLOCK: u64 = 8 * 1024;
/// Queue sentinel telling a worker to exit.
const SENTINEL: i64 = 0x7fff_ffff;

/// Builds a `pcomp` instance.
pub fn build(threads: usize, size: Size) -> WorkloadCase {
    let input = gen_blob(0xC0_FFEE, (128 * 1024 * size.factor()) as usize);
    // The guest compresses block-by-block (runs never span blocks), so the
    // reference does the same.
    let expected: Vec<u8> = input.chunks(BLOCK as usize).flat_map(rle_encode).collect();
    let nblocks = (input.len() as u64).div_ceil(BLOCK);

    let mut pb = ProgramBuilder::new();
    let rt = Rt::install(&mut pb);
    let g_q = pb.global("queue", queue_bytes(16));
    let g_input = pb.global("input_ptr", 8);
    let g_size = pb.global("input_size", 8);
    let g_results = pb.global("results_ptr", 8);
    let path_in = pb.global_data("path_in", b"input.dat");
    let path_out = pb.global_data("path_out", b"out.rle");

    build_rle(&mut pb);
    let rle = pb.declare("rle_compress");

    // Worker: pop block index, compress it, record (ptr, len).
    {
        let mut w = pb.function("worker");
        let top = w.label();
        let done = w.label();
        w.bind(top);
        w.consti(Reg(0), g_q as i64);
        w.call(rt.queue_pop);
        w.mov(Reg(20), Reg(0)); // block index
        w.bin(BinOp::Eq, Reg(1), Reg(20), SENTINEL);
        w.jnz(Reg(1), done);
        // src = input_ptr + idx*BLOCK ; len = min(BLOCK, size - idx*BLOCK)
        w.consti(Reg(9), g_input as i64);
        w.load(Reg(21), Reg(9), 0, Width::W8);
        w.mul(Reg(22), Reg(20), BLOCK as i64);
        w.add(Reg(21), Reg(21), Reg(22)); // src
        w.consti(Reg(9), g_size as i64);
        w.load(Reg(23), Reg(9), 0, Width::W8);
        w.sub(Reg(23), Reg(23), Reg(22)); // remaining
        w.bin(BinOp::Minu, Reg(23), Reg(23), BLOCK as i64); // len
                                                            // dst = alloc(2*len + 16)
        w.mul(Reg(0), Reg(23), 2i64);
        w.add(Reg(0), Reg(0), 16i64);
        w.call(rt.alloc);
        w.mov(Reg(24), Reg(0)); // dst
                                // out_len = rle_compress(src, len, dst)
        w.mov(Reg(0), Reg(21));
        w.mov(Reg(1), Reg(23));
        w.mov(Reg(2), Reg(24));
        w.call(rle);
        w.mov(Reg(25), Reg(0)); // out_len
                                // results[idx] = (dst, out_len)
        w.consti(Reg(9), g_results as i64);
        w.load(Reg(26), Reg(9), 0, Width::W8);
        w.mul(Reg(27), Reg(20), 16i64);
        w.add(Reg(26), Reg(26), Reg(27));
        w.store(Reg(24), Reg(26), 0, Width::W8);
        w.store(Reg(25), Reg(26), 8, Width::W8);
        w.jmp(top);
        w.bind(done);
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");

    // Main.
    {
        let mut f = pb.function("main");
        // fd = open(input, O_RDONLY); size = fsize(fd)
        f.consti(Reg(0), path_in as i64);
        f.consti(Reg(1), 9); // strlen("input.dat")
        f.consti(Reg(2), abi::O_RDONLY as i64);
        f.syscall(abi::SYS_OPEN);
        f.mov(Reg(20), Reg(0)); // fd
        f.syscall(abi::SYS_FSIZE); // r0 = fd still? fsize(fd): args r0 = fd
        f.mov(Reg(21), Reg(0)); // size
        f.consti(Reg(9), g_size as i64);
        f.store(Reg(21), Reg(9), 0, Width::W8);
        // buf = alloc(size); read(fd, buf, size)
        f.mov(Reg(0), Reg(21));
        f.call(rt.alloc);
        f.mov(Reg(22), Reg(0)); // buf
        f.consti(Reg(9), g_input as i64);
        f.store(Reg(22), Reg(9), 0, Width::W8);
        f.mov(Reg(0), Reg(20));
        f.mov(Reg(1), Reg(22));
        f.mov(Reg(2), Reg(21));
        f.syscall(abi::SYS_READ);
        f.mov(Reg(0), Reg(20));
        f.syscall(abi::SYS_CLOSE);
        // results = alloc(nblocks * 16)
        f.consti(Reg(0), (nblocks * 16) as i64);
        f.call(rt.alloc);
        f.consti(Reg(9), g_results as i64);
        f.store(Reg(0), Reg(9), 0, Width::W8);
        // queue_init
        f.consti(Reg(0), g_q as i64);
        f.consti(Reg(1), 16);
        f.call(rt.queue_init);
        gbuild::spawn_workers(&mut f, worker, threads);
        // Push block indices then sentinels.
        let push_top = f.label();
        let push_done = f.label();
        f.consti(Reg(20), 0);
        f.bind(push_top);
        f.bin(BinOp::Ltu, Reg(21), Reg(20), nblocks as i64);
        f.jz(Reg(21), push_done);
        f.consti(Reg(0), g_q as i64);
        f.mov(Reg(1), Reg(20));
        f.call(rt.queue_push);
        f.add(Reg(20), Reg(20), 1i64);
        f.jmp(push_top);
        f.bind(push_done);
        for _ in 0..threads {
            f.consti(Reg(0), g_q as i64);
            f.consti(Reg(1), SENTINEL);
            f.call(rt.queue_push);
        }
        gbuild::join_workers(&mut f, threads);
        // Write compressed blocks in order; total in r25.
        f.consti(Reg(0), path_out as i64);
        f.consti(Reg(1), 7); // strlen("out.rle")
        f.consti(Reg(2), abi::O_WRONLY as i64);
        f.syscall(abi::SYS_OPEN);
        f.mov(Reg(20), Reg(0)); // out fd
        f.consti(Reg(25), 0); // total
        f.consti(Reg(21), 0); // block
        let w_top = f.label();
        let w_done = f.label();
        f.bind(w_top);
        f.bin(BinOp::Ltu, Reg(22), Reg(21), nblocks as i64);
        f.jz(Reg(22), w_done);
        f.consti(Reg(9), g_results as i64);
        f.load(Reg(23), Reg(9), 0, Width::W8);
        f.mul(Reg(24), Reg(21), 16i64);
        f.add(Reg(23), Reg(23), Reg(24));
        f.load(Reg(1), Reg(23), 0, Width::W8); // ptr
        f.load(Reg(2), Reg(23), 8, Width::W8); // len
        f.mov(Reg(0), Reg(20));
        f.add(Reg(25), Reg(25), Reg(2));
        f.syscall(abi::SYS_WRITE);
        f.add(Reg(21), Reg(21), 1i64);
        f.jmp(w_top);
        f.bind(w_done);
        f.mov(Reg(0), Reg(25));
        f.syscall(abi::SYS_EXIT);
        f.finish();
    }

    let world = WorldConfig {
        files: vec![("input.dat".to_string(), input)],
        ..WorldConfig::default()
    };
    let spec = GuestSpec::new("pcomp", Arc::new(pb.finish("main")), world);
    let expected_len = expected.len() as u64;
    WorkloadCase {
        name: "pcomp",
        category: Category::Client,
        threads,
        spec,
        verify: Box::new(move |machine, kernel| {
            expect_eq(
                "exit code (compressed bytes)",
                machine.halted(),
                Some(expected_len),
            )?;
            let out = kernel
                .fs()
                .contents("out.rle")
                .ok_or_else(|| crate::harness::verify_err("out.rle missing"))?;
            if out != expected.as_slice() {
                return Err(crate::harness::verify_err(format!(
                    "out.rle differs: {} vs {} bytes",
                    out.len(),
                    expected.len()
                )));
            }
            Ok(())
        }),
        expected_external_bytes: None,
    }
}

/// Emits the per-block RLE compressor:
/// `fn rle_compress(src, len, dst) -> out_len` producing `(run, byte)` pairs.
fn build_rle(pb: &mut ProgramBuilder) {
    let mut f = pb.function("rle_compress");
    let outer = f.label();
    let inner = f.label();
    let inner_done = f.label();
    let done = f.label();
    f.mov(Reg(10), Reg(0)); // src
    f.mov(Reg(11), Reg(1)); // len
    f.mov(Reg(12), Reg(2)); // dst base
    f.mov(Reg(13), Reg(2)); // dst cursor
    f.consti(Reg(14), 0); // i
    f.bind(outer);
    f.bin(BinOp::Ltu, Reg(17), Reg(14), Reg(11));
    f.jz(Reg(17), done);
    f.add(Reg(18), Reg(10), Reg(14));
    f.load(Reg(15), Reg(18), 0, Width::W1); // b = src[i]
    f.consti(Reg(16), 1); // run
    f.bind(inner);
    f.add(Reg(17), Reg(14), Reg(16));
    f.bin(BinOp::Ltu, Reg(19), Reg(17), Reg(11));
    f.jz(Reg(19), inner_done);
    f.bin(BinOp::Ltu, Reg(19), Reg(16), 255i64);
    f.jz(Reg(19), inner_done);
    f.add(Reg(18), Reg(10), Reg(17));
    f.load(Reg(18), Reg(18), 0, Width::W1);
    f.bin(BinOp::Eq, Reg(19), Reg(18), Reg(15));
    f.jz(Reg(19), inner_done);
    f.add(Reg(16), Reg(16), 1i64);
    f.jmp(inner);
    f.bind(inner_done);
    f.store(Reg(16), Reg(13), 0, Width::W1);
    f.store(Reg(15), Reg(13), 1, Width::W1);
    f.add(Reg(13), Reg(13), 2i64);
    f.add(Reg(14), Reg(14), Reg(16));
    f.jmp(outer);
    f.bind(done);
    f.bin(BinOp::Sub, Reg(0), Reg(13), dp_vm::Src::Reg(Reg(12)));
    f.ret();
    f.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::exec::DirectExecutor;

    #[test]
    fn pcomp_runs_and_verifies() {
        for threads in [1, 2, 3] {
            let case = build(threads, Size::Small);
            let (mut machine, mut kernel) = case.spec.boot();
            DirectExecutor::default()
                .run(&mut machine, &mut kernel, 2_000_000_000)
                .expect("pcomp failed");
            (case.verify)(&machine, &kernel).expect("verification failed");
        }
    }
}
