//! `ocean` — a SPLASH-2-style iterative grid relaxation (Jacobi stencil).
//!
//! A `G×G` integer grid; each iteration computes every interior cell as
//! the average of its four neighbours, reading one buffer and writing the
//! other, with a barrier between iterations. Rows are statically
//! partitioned across workers. After the final iteration each worker
//! atomically folds a checksum of its rows into a global, and main exits
//! with it. Boundary cells are fixed.
//!
//! Concurrency shape: bulk compute with barrier phases — the classic
//! scientific profile whose whole-epoch state is schedule-independent.

use crate::gbuild;
use crate::harness::{expect_eq, Category, Size, VerifyError, WorkloadCase};
use dp_core::GuestSpec;
use dp_os::guest::Rt;
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::{BinOp, Reg, Width};
use std::sync::Arc;

/// Grid dimension.
const G: u64 = 64;

/// Host reference computing the same stencil and checksum.
pub fn reference(iterations: u64) -> u64 {
    let mut a = initial_grid();
    let mut b = a.clone();
    for _ in 0..iterations {
        for i in 1..(G - 1) as usize {
            for j in 1..(G - 1) as usize {
                b[i * G as usize + j] = a[(i - 1) * G as usize + j]
                    .wrapping_add(a[(i + 1) * G as usize + j])
                    .wrapping_add(a[i * G as usize + j - 1])
                    .wrapping_add(a[i * G as usize + j + 1])
                    / 4;
            }
        }
        std::mem::swap(&mut a, &mut b);
    }
    let mut sum = 0u64;
    for i in 1..(G - 1) as usize {
        for j in 1..(G - 1) as usize {
            sum = sum.wrapping_add(a[i * G as usize + j]);
        }
    }
    sum
}

fn initial_grid() -> Vec<u64> {
    let mut rng = gbuild::XorShift::new(0x0CEA_0CEA);
    (0..(G * G) as usize)
        .map(|_| rng.next_u64() % 10_000)
        .collect()
}

/// Builds an `ocean` instance.
pub fn build(threads: usize, size: Size) -> WorkloadCase {
    let iterations = 32 * size.factor();
    let expected = reference(iterations);

    let grid: Vec<u8> = initial_grid()
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();

    let mut pb = ProgramBuilder::new();
    let rt = Rt::install(&mut pb);
    let g_a = pb.global_data("grid_a", &grid);
    let g_b = pb.global_data("grid_b", &grid);
    let g_barrier = pb.global("barrier", 16);
    let g_sum = pb.global("checksum", 8);
    let nthreads = threads as i64;
    let row_bytes = (G * 8) as i64;

    // Worker(idx): relax its rows each iteration, with barriers.
    {
        let mut w = pb.function("worker");
        let iter_top = w.label();
        let iter_done = w.label();
        let row_top = w.label();
        let row_done = w.label();
        let col_top = w.label();
        let col_done = w.label();
        let pick_a = w.label();
        let picked = w.label();
        let sum_row = w.label();
        let sum_row_done = w.label();
        let sum_col = w.label();
        let sum_col_done = w.label();

        // r20 idx, r21 iter, r22 row_start, r23 row_end
        w.mov(Reg(20), Reg(0));
        // Interior rows 1..G-1 split across workers.
        let interior = (G - 2) as i64;
        w.mul(Reg(22), Reg(20), interior);
        w.bin(BinOp::Divu, Reg(22), Reg(22), nthreads);
        w.add(Reg(22), Reg(22), 1i64);
        w.add(Reg(23), Reg(20), 1i64);
        w.mul(Reg(23), Reg(23), interior);
        w.bin(BinOp::Divu, Reg(23), Reg(23), nthreads);
        w.add(Reg(23), Reg(23), 1i64);
        w.consti(Reg(21), 0);

        w.bind(iter_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(21), iterations as i64);
        w.jz(Reg(16), iter_done);
        // src/dst by parity: even iter reads A writes B.
        w.bin(BinOp::And, Reg(16), Reg(21), 1i64);
        w.jz(Reg(16), pick_a);
        w.consti(Reg(24), g_b as i64); // src
        w.consti(Reg(25), g_a as i64); // dst
        w.jmp(picked);
        w.bind(pick_a);
        w.consti(Reg(24), g_a as i64);
        w.consti(Reg(25), g_b as i64);
        w.bind(picked);
        // rows
        w.mov(Reg(26), Reg(22));
        w.bind(row_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(26), Reg(23));
        w.jz(Reg(16), row_done);
        w.consti(Reg(27), 1); // col
        w.bind(col_top);
        w.bin(BinOp::Ltu, Reg(16), Reg(27), (G - 1) as i64);
        w.jz(Reg(16), col_done);
        // addr = base + (row*G + col)*8
        w.mul(Reg(17), Reg(26), G as i64);
        w.add(Reg(17), Reg(17), Reg(27));
        w.mul(Reg(17), Reg(17), 8i64);
        w.add(Reg(18), Reg(24), Reg(17)); // src cell
        w.load(Reg(19), Reg(18), -row_bytes, Width::W8); // up
        w.load(Reg(15), Reg(18), row_bytes, Width::W8); // down
        w.add(Reg(19), Reg(19), Reg(15));
        w.load(Reg(15), Reg(18), -8, Width::W8); // left
        w.add(Reg(19), Reg(19), Reg(15));
        w.load(Reg(15), Reg(18), 8, Width::W8); // right
        w.add(Reg(19), Reg(19), Reg(15));
        w.bin(BinOp::Divu, Reg(19), Reg(19), 4i64);
        w.add(Reg(18), Reg(25), Reg(17)); // dst cell
        w.store(Reg(19), Reg(18), 0, Width::W8);
        w.add(Reg(27), Reg(27), 1i64);
        w.jmp(col_top);
        w.bind(col_done);
        w.add(Reg(26), Reg(26), 1i64);
        w.jmp(row_top);
        w.bind(row_done);
        // barrier
        w.consti(Reg(0), g_barrier as i64);
        w.consti(Reg(1), nthreads);
        w.call(rt.barrier_wait);
        w.add(Reg(21), Reg(21), 1i64);
        w.jmp(iter_top);

        w.bind(iter_done);
        // Checksum own rows of the final buffer (parity of `iterations`).
        if iterations.is_multiple_of(2) {
            w.consti(Reg(24), g_a as i64);
        } else {
            w.consti(Reg(24), g_b as i64);
        }
        w.consti(Reg(28), 0); // local sum
        w.mov(Reg(26), Reg(22));
        w.bind(sum_row);
        w.bin(BinOp::Ltu, Reg(16), Reg(26), Reg(23));
        w.jz(Reg(16), sum_row_done);
        w.consti(Reg(27), 1);
        w.bind(sum_col);
        w.bin(BinOp::Ltu, Reg(16), Reg(27), (G - 1) as i64);
        w.jz(Reg(16), sum_col_done);
        w.mul(Reg(17), Reg(26), G as i64);
        w.add(Reg(17), Reg(17), Reg(27));
        w.mul(Reg(17), Reg(17), 8i64);
        w.add(Reg(18), Reg(24), Reg(17));
        w.load(Reg(19), Reg(18), 0, Width::W8);
        w.add(Reg(28), Reg(28), Reg(19));
        w.add(Reg(27), Reg(27), 1i64);
        w.jmp(sum_col);
        w.bind(sum_col_done);
        w.add(Reg(26), Reg(26), 1i64);
        w.jmp(sum_row);
        w.bind(sum_row_done);
        w.consti(Reg(9), g_sum as i64);
        w.fetch_add(Reg(16), Reg(9), dp_vm::Src::Reg(Reg(28)));
        gbuild::thread_exit0(&mut w);
        w.finish();
    }
    let worker = pb.declare("worker");

    {
        let mut f = pb.function("main");
        gbuild::spawn_workers(&mut f, worker, threads);
        gbuild::join_workers(&mut f, threads);
        gbuild::exit_with_global(&mut f, g_sum);
        f.finish();
    }

    let spec = GuestSpec::new("ocean", Arc::new(pb.finish("main")), WorldConfig::default());
    WorkloadCase {
        name: "ocean",
        category: Category::Scientific,
        threads,
        spec,
        verify: Box::new(move |machine, _kernel| -> Result<(), VerifyError> {
            expect_eq("grid checksum", machine.halted(), Some(expected))
        }),
        expected_external_bytes: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::exec::DirectExecutor;

    #[test]
    fn ocean_matches_reference_for_all_thread_counts() {
        for threads in [1, 2, 3, 4] {
            let case = build(threads, Size::Small);
            let (mut machine, mut kernel) = case.spec.boot();
            DirectExecutor::default()
                .run(&mut machine, &mut kernel, 2_000_000_000)
                .expect("ocean failed");
            (case.verify)(&machine, &kernel).expect("verification failed");
        }
    }

    #[test]
    fn reference_is_iteration_sensitive() {
        assert_ne!(reference(2), reference(3));
    }
}
