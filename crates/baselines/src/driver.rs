//! A multi-CPU execution driver for the baseline recorders.
//!
//! Like the DoublePlay thread-parallel runner, this simulates `cpus`
//! processors with jittered atomic micro-slices from a hidden seed — but
//! instead of emitting uniparallel hints it calls back into a
//! baseline-specific [`Hooks`] implementation, which doubles as the
//! memory-access observer. Value logging and CREW both plug in here.

use dp_core::logs::{request_hash, request_hash_args, SyscallLog, SyscallLogEntry};
use dp_core::RecordError;
use dp_os::abi;
use dp_os::kernel::{Disposition, Kernel, Wake};
use dp_vm::observer::MemObserver;
use dp_vm::{Machine, SliceLimits, StopReason, Tid};
use std::collections::BTreeMap;

/// Baseline-specific instrumentation points.
pub trait Hooks: MemObserver {
    /// A syscall trapped on `tid` (before the kernel services it);
    /// `icount` includes the trap instruction.
    fn on_syscall(&mut self, tid: Tid, icount: u64) {
        let _ = (tid, icount);
    }

    /// A blocked syscall completed for `tid`.
    fn on_wake(&mut self, tid: Tid) {
        let _ = tid;
    }

    /// A thread was spawned (recorders capture start conditions).
    fn on_spawn(&mut self, tid: Tid, func: dp_vm::FuncId, args: [dp_vm::Word; 2]) {
        let _ = (tid, func, args);
    }

    /// A signal was delivered to `tid` at `icount`.
    fn on_signal(&mut self, tid: Tid, sig: dp_vm::Word, icount: u64) {
        let _ = (tid, sig, icount);
    }

    /// A thread finished (exit or machine halt follows separately).
    fn on_thread_done(&mut self, tid: Tid, icount: u64) {
        let _ = (tid, icount);
    }
}

/// Result of driving a run to completion.
#[derive(Debug)]
pub struct DriveOutcome {
    /// Wall cycles across the CPUs.
    pub cycles: u64,
    /// Guest instructions executed.
    pub instructions: u64,
    /// Logged-class syscall completions, in completion order (every
    /// baseline needs the same input log DoublePlay does).
    pub syscalls: SyscallLog,
    /// All syscall completions per thread, in order, including
    /// deterministic ones — value-logging replay re-executes threads in
    /// isolation and needs every result.
    pub all_syscalls: BTreeMap<Tid, Vec<SyscallLogEntry>>,
}

/// SplitMix64 for schedule jitter (hidden from the recorders).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// Drives the guest to completion on `cpus` simulated processors.
///
/// # Errors
///
/// Guest faults, deadlocks, or exceeding `max_instructions`.
#[allow(clippy::too_many_arguments)]
pub fn drive<H: Hooks>(
    machine: &mut Machine,
    kernel: &mut Kernel,
    cpus: usize,
    quantum: u64,
    jitter: u64,
    seed: u64,
    max_instructions: u64,
    hooks: &mut H,
) -> Result<DriveOutcome, RecordError> {
    let mut rng = Rng(seed ^ 0x6a09_e667_f3bc_c908);
    let switch = kernel.cost_model().context_switch;
    let mut clocks = vec![0u64; cpus];
    let mut last_thread: Vec<Option<Tid>> = vec![None; cpus];
    let mut available_at: BTreeMap<Tid, u64> = BTreeMap::new();
    let mut out = DriveOutcome {
        cycles: 0,
        instructions: 0,
        syscalls: SyscallLog::new(),
        all_syscalls: BTreeMap::new(),
    };

    loop {
        if machine.halted().is_some() || machine.live_threads() == 0 {
            break;
        }
        if out.instructions > max_instructions {
            return Err(RecordError::BudgetExhausted);
        }
        let cpu = (0..cpus)
            .min_by_key(|&c| (clocks[c], c))
            .expect("cpus >= 1");
        let now = clocks[cpu];

        let wakes = kernel.advance_time(machine, now);
        log_wakes(&mut out, hooks, &wakes);

        let eligible: Vec<Tid> = machine
            .threads()
            .iter()
            .filter(|t| t.is_ready())
            .map(|t| t.tid)
            .filter(|t| available_at.get(t).copied().unwrap_or(0) <= now)
            .collect();
        let Some(&tid) = eligible.get(rng.below(eligible.len() as u64) as usize) else {
            let next_avail = machine
                .threads()
                .iter()
                .filter(|t| t.is_ready())
                .filter_map(|t| available_at.get(&t.tid).copied())
                .filter(|&at| at > now)
                .min();
            let next_event = kernel.next_event_time(now);
            match [next_avail, next_event].into_iter().flatten().min() {
                Some(t) => clocks[cpu] = t.max(now + 1),
                None => {
                    if machine.threads().iter().any(|t| t.is_ready()) {
                        // Work is mid-slice elsewhere; idle briefly.
                        clocks[cpu] = now + quantum.max(1);
                    } else if machine.live_threads() > 0 {
                        return Err(RecordError::Deadlock {
                            blocked: machine.live_threads(),
                        });
                    }
                }
            }
            continue;
        };

        if let Some((sig, handler)) = kernel.take_pending_signal(tid) {
            hooks.on_signal(tid, sig, machine.thread(tid).icount);
            machine.push_signal_frame(tid, handler, &[sig]);
        }
        let budget = (quantum + rng.below(jitter + 1)).max(1);
        let before_threads = machine.threads().len();
        let run = machine.run_slice(tid, SliceLimits::budget(budget), hooks)?;
        out.instructions += run.executed;
        let mut slice_cycles = run.executed;
        if last_thread[cpu] != Some(tid) {
            slice_cycles += switch;
            last_thread[cpu] = Some(tid);
        }
        match run.stop {
            StopReason::Budget | StopReason::IcountTarget | StopReason::Atomic { .. } => {}
            StopReason::Exited => {
                hooks.on_thread_done(tid, machine.thread(tid).icount);
                let wakes = kernel.on_thread_exited(machine, tid);
                log_wakes(&mut out, hooks, &wakes);
            }
            StopReason::Syscall(req) => {
                hooks.on_syscall(tid, machine.thread(tid).icount);
                let arg_hash = request_hash(machine, &req);
                let sys = kernel.handle(machine, req, now + slice_cycles);
                slice_cycles += sys.cost;
                if machine.threads().len() > before_threads {
                    let new = machine.threads().last().unwrap();
                    hooks.on_spawn(new.tid, new.pc.func, [new.regs[0], new.regs[1]]);
                }
                match sys.disposition {
                    Disposition::Done { ret } => {
                        let entry = SyscallLogEntry {
                            tid,
                            num: req.num,
                            arg_hash,
                            ret,
                            effect: sys.effect,
                            via_wake: false,
                        };
                        if abi::is_logged(req.num) {
                            out.syscalls.push(entry.clone());
                        }
                        out.all_syscalls.entry(tid).or_default().push(entry);
                    }
                    Disposition::Blocked => {}
                    Disposition::ThreadExited | Disposition::Halted { .. } => {
                        // Exit-class syscalls never complete, but isolated
                        // per-thread replay still needs them in the log.
                        hooks.on_thread_done(tid, machine.thread(tid).icount);
                        out.all_syscalls
                            .entry(tid)
                            .or_default()
                            .push(SyscallLogEntry {
                                tid,
                                num: req.num,
                                arg_hash,
                                ret: 0,
                                effect: sys.effect,
                                via_wake: false,
                            });
                    }
                }
                log_wakes(&mut out, hooks, &sys.wakes);
            }
        }
        clocks[cpu] = now + slice_cycles;
        available_at.insert(tid, clocks[cpu]);
    }

    out.cycles = clocks.into_iter().max().unwrap_or(0);
    Ok(out)
}

fn log_wakes<H: Hooks>(out: &mut DriveOutcome, hooks: &mut H, wakes: &[Wake]) {
    for w in wakes {
        let entry = SyscallLogEntry {
            tid: w.tid,
            num: w.num,
            arg_hash: request_hash_args(&w.req),
            ret: w.ret,
            effect: w.effect.clone(),
            via_wake: true,
        };
        if abi::is_logged(w.num) {
            // Only logged-class completions appear as wake events:
            // deterministic blocking (join) re-executes during replay.
            hooks.on_wake(w.tid);
            out.syscalls.push(entry.clone());
        }
        out.all_syscalls.entry(w.tid).or_default().push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_vm::observer::Access;

    struct CountingHooks {
        accesses: u64,
        syscalls: u64,
    }

    impl MemObserver for CountingHooks {
        fn on_access(&mut self, _a: Access) {
            self.accesses += 1;
        }
    }

    impl Hooks for CountingHooks {
        fn on_syscall(&mut self, _tid: Tid, _ic: u64) {
            self.syscalls += 1;
        }
    }

    #[test]
    fn drives_a_workload_to_completion() {
        let case = dp_workloads::pfscan::build(2, dp_workloads::Size::Small);
        let (mut machine, mut kernel) = case.spec.boot();
        let mut hooks = CountingHooks {
            accesses: 0,
            syscalls: 0,
        };
        let out = drive(
            &mut machine,
            &mut kernel,
            2,
            2_000,
            1_000,
            42,
            2_000_000_000,
            &mut hooks,
        )
        .unwrap();
        (case.verify)(&machine, &kernel).unwrap();
        assert!(out.instructions > 0);
        assert!(out.cycles > 0);
        assert!(hooks.accesses > 0);
        assert!(hooks.syscalls > 0);
        assert!(!out.all_syscalls.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let case = dp_workloads::kvstore::build(2, dp_workloads::Size::Small);
        let mut hashes = Vec::new();
        for _ in 0..2 {
            let (mut machine, mut kernel) = case.spec.boot();
            let mut hooks = CountingHooks {
                accesses: 0,
                syscalls: 0,
            };
            drive(
                &mut machine,
                &mut kernel,
                2,
                1_000,
                700,
                9,
                2_000_000_000,
                &mut hooks,
            )
            .unwrap();
            hashes.push(machine.state_hash());
        }
        assert_eq!(hashes[0], hashes[1]);
    }
}
