//! The shared-read **value logging** baseline (SMP-RR style).
//!
//! A conventional software approach to multiprocessor replay: instrument
//! every read of *shared* memory (pages touched by more than one thread)
//! and log the value observed, plus every syscall result per thread. Each
//! thread then replays **in isolation**: its shared reads and atomics are
//! satisfied from its log, its syscalls from its syscall log, so no
//! cross-thread coordination is needed at all — replay is embarrassingly
//! parallel, but the log is enormous and recording pays an instrumentation
//! tax on every memory access. This is the "log values" end of the design
//! space the paper contrasts uniparallelism against.

use crate::common::BaselineStats;
use crate::driver::{drive, DriveOutcome, Hooks};
use dp_core::logs::SyscallLogEntry;
use dp_core::{measure_native, DoublePlayConfig, GuestSpec, RecordError, ReplayError};
use dp_vm::observer::{Access, MemObserver};
use dp_vm::{memory::page_of, FuncId, Machine, SliceLimits, StopReason, Tid, Width, Word};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// One thread's recorded inputs and expected final state.
#[derive(Debug, Clone)]
pub struct ThreadLog {
    /// Entry function (for threads spawned during the run).
    pub func: FuncId,
    /// Spawn arguments.
    pub args: [Word; 2],
    /// Values of logged (shared) reads and atomics, in per-thread order,
    /// keyed by the thread's running count of read-class accesses.
    pub reads: VecDeque<(u64, Word)>,
    /// Every syscall completion, in order.
    pub syscalls: VecDeque<SyscallLogEntry>,
    /// Final instruction count (replay target).
    pub final_icount: u64,
    /// Digest of the thread's final architectural state.
    pub final_thread_hash: u64,
}

/// A complete value-log recording.
#[derive(Debug)]
pub struct ValueLogRecording {
    /// The guest this records (program hash).
    pub program_hash: u64,
    /// Per-thread logs.
    pub threads: BTreeMap<Tid, ThreadLog>,
    /// Measurements.
    pub stats: BaselineStats,
}

#[derive(Default)]
struct SharedTracker {
    /// page -> first accessor, or None once shared.
    page_owner: HashMap<u64, Option<Tid>>,
    /// Per-thread count of read-class accesses (loads + atomics).
    read_counts: BTreeMap<Tid, u64>,
    /// Per-thread logged values.
    logs: BTreeMap<Tid, Vec<(u64, Word)>>,
    /// Total accesses (instrumentation cost) and logged reads.
    accesses: u64,
    logged: u64,
    thread_meta: BTreeMap<Tid, (FuncId, [Word; 2])>,
    finals: BTreeMap<Tid, u64>,
}

impl SharedTracker {
    fn is_shared(&mut self, tid: Tid, addr: Word) -> bool {
        let page = page_of(addr);
        match self.page_owner.get_mut(&page) {
            None => {
                self.page_owner.insert(page, Some(tid));
                false
            }
            Some(Some(owner)) if *owner == tid => false,
            Some(slot) => {
                *slot = None; // shared forever after
                true
            }
        }
    }
}

impl MemObserver for SharedTracker {
    fn on_access(&mut self, a: Access) {
        self.accesses += 1;
        let shared = self.is_shared(a.tid, a.addr);
        if a.kind.reads() {
            let n = self.read_counts.entry(a.tid).or_insert(0);
            *n += 1;
            if shared {
                self.logged += 1;
                self.logs.entry(a.tid).or_default().push((*n, a.value));
            }
        }
    }
}

impl Hooks for SharedTracker {
    fn on_spawn(&mut self, tid: Tid, func: FuncId, args: [Word; 2]) {
        self.thread_meta.insert(tid, (func, args));
    }

    fn on_thread_done(&mut self, tid: Tid, icount: u64) {
        self.finals.insert(tid, icount);
    }
}

fn thread_hash(machine: &Machine, tid: Tid) -> u64 {
    let mut h = dp_vm::hash::Fnv1a::new();
    machine.thread(tid).hash_into(&mut h);
    h.finish()
}

/// Records `spec` under shared-read value logging.
///
/// # Errors
///
/// Guest faults, deadlocks, or budget exhaustion.
pub fn record(
    spec: &GuestSpec,
    config: &DoublePlayConfig,
) -> Result<ValueLogRecording, RecordError> {
    let (mut machine, mut kernel) = spec.boot();
    let mut tracker = SharedTracker::default();
    let out: DriveOutcome = drive(
        &mut machine,
        &mut kernel,
        config.cpus,
        config.tp_quantum,
        config.tp_jitter,
        config.hidden_seed,
        config.max_instructions,
        &mut tracker,
    )?;

    let cost = kernel.cost_model();
    // Log payload: ~9 bytes per logged value, plus per-thread syscall logs.
    let read_bytes: u64 = tracker.logs.values().map(|v| v.len() as u64 * 9).sum();
    let sys_bytes: u64 = out
        .all_syscalls
        .values()
        .flat_map(|v| v.iter())
        .map(|e| 12 + e.effect.bytes())
        .sum();
    let log_bytes = read_bytes + sys_bytes;
    // Overhead: instrumentation tax on every access + log writes.
    let instr_tax = tracker.accesses * cost.value_log_instr_num / cost.value_log_instr_den.max(1);
    let recorded_cycles = out.cycles + (instr_tax + cost.log_write(log_bytes)) / config.cpus as u64;

    let mut threads = BTreeMap::new();
    for t in machine.threads() {
        let (func, args) = tracker
            .thread_meta
            .get(&t.tid)
            .copied()
            .unwrap_or((spec.program.entry(), [0, 0]));
        threads.insert(
            t.tid,
            ThreadLog {
                func,
                args,
                reads: tracker.logs.remove(&t.tid).unwrap_or_default().into(),
                syscalls: out
                    .all_syscalls
                    .get(&t.tid)
                    .cloned()
                    .unwrap_or_default()
                    .into(),
                final_icount: t.icount,
                final_thread_hash: thread_hash(&machine, t.tid),
            },
        );
    }
    Ok(ValueLogRecording {
        program_hash: spec.program_hash(),
        threads,
        stats: BaselineStats {
            recorded_cycles,
            native_cycles: measure_native(spec, config)?,
            log_bytes,
            events: tracker.logged,
            instructions: out.instructions,
        },
    })
}

/// Replay observer: feeds logged values back at the recorded read ordinals.
struct Feeder {
    reads: VecDeque<(u64, Word)>,
    count: u64,
}

impl MemObserver for Feeder {
    fn on_access(&mut self, _a: Access) {}

    fn intercept_load(&mut self, _tid: Tid, _addr: Word, _width: Width) -> Option<Word> {
        self.count += 1;
        self.feed()
    }

    fn intercept_atomic(&mut self, _tid: Tid, _addr: Word) -> Option<Word> {
        self.count += 1;
        self.feed()
    }
}

impl Feeder {
    fn feed(&mut self) -> Option<Word> {
        match self.reads.front() {
            Some(&(ord, v)) if ord == self.count => {
                self.reads.pop_front();
                Some(v)
            }
            _ => None,
        }
    }
}

/// Replays one thread **in isolation** and verifies its final state.
///
/// # Errors
///
/// [`ReplayError`] on any mismatch with the recording.
pub fn replay_thread(
    spec: &GuestSpec,
    recording: &ValueLogRecording,
    tid: Tid,
) -> Result<(), ReplayError> {
    if spec.program_hash() != recording.program_hash {
        return Err(ReplayError::ProgramMismatch {
            expected: recording.program_hash,
            actual: spec.program_hash(),
        });
    }
    let log = recording
        .threads
        .get(&tid)
        .ok_or_else(|| ReplayError::BadRequest {
            detail: format!("no thread log for {tid}"),
        })?;
    let (mut machine, _kernel) = spec.boot();
    // Materialize earlier threads so tids and stacks line up.
    for (other, other_log) in recording.threads.range(..=tid) {
        if other.0 > 0 {
            machine.spawn_thread(other_log.func, &other_log.args);
        }
    }
    let mut feeder = Feeder {
        reads: log.reads.clone(),
        count: 0,
    };
    let mut syscalls = log.syscalls.clone();
    loop {
        let t = machine.thread(tid);
        if t.is_exited() || t.icount >= log.final_icount {
            break;
        }
        let run = machine.run_slice(
            tid,
            SliceLimits {
                max_instrs: u64::MAX,
                icount_target: Some(log.final_icount),
                stop_at_atomics: false,
            },
            &mut feeder,
        )?;
        match run.stop {
            StopReason::Syscall(req) => {
                let entry = syscalls
                    .pop_front()
                    .ok_or_else(|| ReplayError::LogMismatch {
                        epoch: 0,
                        tid,
                        detail: format!("syscall {} beyond log", dp_os::abi::name(req.num)),
                    })?;
                if entry.num != req.num {
                    return Err(ReplayError::LogMismatch {
                        epoch: 0,
                        tid,
                        detail: format!(
                            "issued {} but log has {}",
                            dp_os::abi::name(req.num),
                            dp_os::abi::name(entry.num)
                        ),
                    });
                }
                for (addr, bytes) in &entry.effect.guest_writes {
                    machine.mem_mut().write_bytes(*addr, bytes);
                }
                match req.num {
                    dp_os::abi::SYS_EXIT => {
                        machine.exit_thread(tid, entry.ret);
                    }
                    dp_os::abi::SYS_THREAD_EXIT => {
                        machine.exit_thread(tid, req.args[0]);
                    }
                    _ => machine.complete_syscall(tid, entry.ret),
                }
            }
            StopReason::Exited | StopReason::IcountTarget | StopReason::Budget => {}
            StopReason::Atomic { .. } => {}
        }
        if machine.thread(tid).status == dp_vm::ThreadStatus::Waiting {
            unreachable!("solo replay never blocks");
        }
    }
    let actual = thread_hash(&machine, tid);
    if actual != log.final_thread_hash {
        return Err(ReplayError::HashMismatch {
            epoch: 0,
            expected: log.final_thread_hash,
            actual,
        });
    }
    Ok(())
}

/// Replays every thread (the embarrassingly parallel offline check).
///
/// # Errors
///
/// First per-thread mismatch.
pub fn replay_all(spec: &GuestSpec, recording: &ValueLogRecording) -> Result<(), ReplayError> {
    for tid in recording.threads.keys() {
        replay_thread(spec, recording, *tid)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_workloads::Size;

    #[test]
    fn records_and_replays_every_thread_of_a_racy_program() {
        // Value logging handles races by construction: each thread replays
        // from its own value log regardless of what the others did.
        let case = dp_workloads::racey::counter(2, Size::Small);
        let config = DoublePlayConfig {
            tp_quantum: 300,
            tp_jitter: 400,
            ..DoublePlayConfig::new(2)
        };
        let rec = record(&case.spec, &config).unwrap();
        assert!(rec.stats.events > 0, "racy counter must log shared reads");
        replay_all(&case.spec, &rec).unwrap();
    }

    #[test]
    fn records_and_replays_a_locked_program() {
        let case = dp_workloads::kvstore::build(2, Size::Small);
        let config = DoublePlayConfig::new(2);
        let rec = record(&case.spec, &config).unwrap();
        replay_all(&case.spec, &rec).unwrap();
        assert!(rec.stats.log_bytes > 0);
    }

    #[test]
    fn log_dwarfs_doubleplay_for_sharing_heavy_code() {
        let case = dp_workloads::ocean::build(2, Size::Small);
        let config = DoublePlayConfig::new(2);
        let vl = record(&case.spec, &config).unwrap();
        let dp = dp_core::record(&case.spec, &config).unwrap();
        assert!(
            vl.stats.log_bytes > 10 * dp.stats.log_bytes(),
            "value log {} should dwarf DoublePlay log {}",
            vl.stats.log_bytes,
            dp.stats.log_bytes()
        );
    }

    #[test]
    fn tampered_value_breaks_replay() {
        let case = dp_workloads::racey::counter(2, Size::Small);
        let config = DoublePlayConfig {
            tp_quantum: 300,
            tp_jitter: 400,
            ..DoublePlayConfig::new(2)
        };
        let mut rec = record(&case.spec, &config).unwrap();
        let log = rec.threads.get_mut(&Tid(1)).unwrap();
        // Tamper with the last logged value: it lands in the thread's final
        // register state, so the digest check must catch it. (Earlier
        // values can legitimately wash out.)
        if let Some(last) = log.reads.back_mut() {
            last.1 ^= 0xff;
            assert!(replay_thread(&case.spec, &rec, Tid(1)).is_err());
        }
    }
}
