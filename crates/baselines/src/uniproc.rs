//! The uniprocessor record/replay baseline.
//!
//! The scheme DoublePlay generalizes: timeslice *all* threads on a single
//! processor for the whole run and log only the schedule and syscall
//! results. Trivially correct and cheap to log — but it forfeits all
//! parallelism, so recorded runtime is roughly `N×` the native
//! multiprocessor runtime for compute-bound programs. DoublePlay's whole
//! contribution is getting this scheme's logging simplicity *without* the
//! serialization, so this baseline anchors experiment E5.
//!
//! Implementation: the run is one giant "epoch" executed by the live-mode
//! single-CPU engine from `dp-core`; replay reuses the stock epoch
//! replayer.

use crate::common::BaselineStats;
use dp_core::checkpoint::Checkpoint;
use dp_core::logs::codec;
use dp_core::recording::EpochRecord;
use dp_core::{measure_native, DoublePlayConfig, GuestSpec, RecordError, ReplayError};
use dp_os::kernel::Kernel;
use dp_vm::Machine;

/// A uniprocessor recording: the initial state plus one whole-run epoch.
#[derive(Debug)]
pub struct UniprocRecording {
    /// Boot checkpoint.
    pub initial: Checkpoint,
    /// The whole execution as one epoch record.
    pub epoch: EpochRecord,
    /// Measurements.
    pub stats: BaselineStats,
}

/// Records `spec` by timeslicing every thread on one processor.
///
/// # Errors
///
/// Guest faults or deadlocks.
pub fn record(
    spec: &GuestSpec,
    config: &DoublePlayConfig,
) -> Result<UniprocRecording, RecordError> {
    let (machine, kernel) = spec.boot();
    let initial = Checkpoint::capture(&machine, &kernel);
    let ep = dp_core::record::run_live(&initial, u64::MAX, config.ep_quantum, 0)?;

    let sched_bytes = codec::encode_schedule(&ep.schedule).len() as u64;
    let sys_bytes = codec::encode_syscalls(&ep.generated).len() as u64;
    let cost = kernel.cost_model();
    let log_cost = cost.log_write(sched_bytes + sys_bytes);
    let stats = BaselineStats {
        recorded_cycles: ep.cycles + log_cost,
        native_cycles: measure_native(spec, config)?,
        log_bytes: sched_bytes + sys_bytes,
        events: ep.schedule.len() as u64,
        instructions: ep.instructions,
    };
    let epoch = EpochRecord {
        index: 0,
        schedule: ep.schedule,
        syscalls: ep.generated,
        end_machine_hash: ep.end_hash,
        external: ep.external,
        start: Some(initial.to_image()),
        tp_cycles: ep.cycles,
    };
    Ok(UniprocRecording {
        initial,
        epoch,
        stats,
    })
}

/// Replays a uniprocessor recording, verifying the end state.
///
/// # Errors
///
/// Any [`ReplayError`] on mismatch.
pub fn replay(recording: &UniprocRecording) -> Result<(Machine, Kernel), ReplayError> {
    let (machine, kernel, _) = dp_core::replay_epoch(&recording.initial, &recording.epoch)?;
    Ok((machine, kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_workloads::Size;

    #[test]
    fn records_and_replays_a_workload() {
        let case = dp_workloads::kvstore::build(2, Size::Small);
        let config = DoublePlayConfig::new(2);
        let rec = record(&case.spec, &config).unwrap();
        assert!(rec.stats.instructions > 0);
        let (machine, kernel) = replay(&rec).unwrap();
        (case.verify)(&machine, &kernel).unwrap();
    }

    #[test]
    fn serialization_overhead_scales_with_cpus() {
        // Compute-bound workload: uniprocessor recording forfeits the
        // speedup, so overhead should be roughly (cpus - 1) or worse.
        let case = dp_workloads::ocean::build(2, Size::Small);
        let config = DoublePlayConfig::new(2);
        let rec = record(&case.spec, &config).unwrap();
        assert!(
            rec.stats.overhead() > 0.6,
            "uniprocessor overhead suspiciously low: {}",
            rec.stats.overhead()
        );
    }

    #[test]
    fn replay_detects_tampering() {
        let case = dp_workloads::pfscan::build(2, Size::Small);
        let mut rec = record(&case.spec, &DoublePlayConfig::new(2)).unwrap();
        rec.epoch.end_machine_hash ^= 1;
        assert!(matches!(
            replay(&rec),
            Err(ReplayError::HashMismatch { .. })
        ));
    }
}
