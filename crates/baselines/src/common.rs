//! Shared baseline measurement types.

/// Measurements from one baseline recording, comparable with
/// [`dp_core::RecorderStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BaselineStats {
    /// Simulated end-to-end recorded runtime.
    pub recorded_cycles: u64,
    /// Native (unrecorded) runtime on the same schedule.
    pub native_cycles: u64,
    /// Encoded log bytes.
    pub log_bytes: u64,
    /// Scheme-specific event count (logged reads, CREW faults, slices).
    pub events: u64,
    /// Guest instructions executed.
    pub instructions: u64,
}

impl BaselineStats {
    /// Recording overhead relative to native.
    pub fn overhead(&self) -> f64 {
        if self.native_cycles == 0 {
            return 0.0;
        }
        self.recorded_cycles as f64 / self.native_cycles as f64 - 1.0
    }

    /// Log rate in bytes per million native cycles.
    pub fn log_bytes_per_mcycle(&self) -> f64 {
        if self.native_cycles == 0 {
            return 0.0;
        }
        self.log_bytes as f64 * 1e6 / self.native_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        let s = BaselineStats {
            recorded_cycles: 300,
            native_cycles: 100,
            ..Default::default()
        };
        assert!((s.overhead() - 2.0).abs() < 1e-9);
        assert_eq!(BaselineStats::default().overhead(), 0.0);
    }
}
