//! # dp-baselines — conventional multiprocessor record/replay schemes
//!
//! The design space DoublePlay is positioned against (experiment E5):
//!
//! * [`uniproc`] — classic **uniprocessor record/replay**: timeslice all
//!   threads on one CPU. Tiny logs, trivially correct, but forfeits all
//!   parallelism (≈N× recording slowdown).
//! * [`value_log`] — **shared-read value logging** (SMP-RR style): log the
//!   value of every read from shared pages plus every syscall result, so
//!   each thread replays in isolation. Handles arbitrary races and replays
//!   embarrassingly parallel — at the price of per-access instrumentation
//!   and enormous logs.
//! * [`crew`] — **CREW page ownership** (SMP-ReVirt style): a
//!   concurrent-read/exclusive-write state machine per page; ownership
//!   transitions are logged and totally order all conflicts, so replay is
//!   exact even for races — but fine-grained sharing causes fault storms.
//!
//! Each baseline produces real, replayable recordings (with verifying
//! replayers), not just cost estimates, so the comparison table in the
//! benchmark harness is backed by executable artifacts.

#![warn(missing_docs)]

pub mod common;
pub mod crew;
pub mod driver;
pub mod uniproc;
pub mod value_log;

pub use common::BaselineStats;
