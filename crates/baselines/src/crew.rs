//! The **CREW page-ownership** baseline (SMP-ReVirt style).
//!
//! A concurrent-read/exclusive-write protocol at page granularity: each
//! page is unowned, read-shared, or owned by one thread. Any access that
//! violates the current state is an ownership *fault*: the recorder logs
//! the transition point (thread + exact instruction count) and pays a
//! page-protection fault cost. Because all conflicting accesses cross
//! transitions, the logged transition order totally orders every conflict
//! — so replay serializes the recorded chunks on one CPU and reproduces
//! the run exactly, races included. The price is a fault storm whenever
//! sharing is fine-grained (the classic CREW weakness the paper cites).
//!
//! The transition log is emitted in `dp-core`'s schedule-log format, so
//! replay reuses the stock epoch replayer.

use crate::common::BaselineStats;
use crate::driver::{drive, Hooks};
use dp_core::checkpoint::Checkpoint;
use dp_core::logs::{codec, ScheduleLog};
use dp_core::recording::EpochRecord;
use dp_core::{measure_native, DoublePlayConfig, GuestSpec, RecordError, ReplayError};
use dp_os::kernel::Kernel;
use dp_vm::observer::{Access, MemObserver};
use dp_vm::{memory::page_of, Machine, Tid};
use std::collections::{BTreeMap, HashMap};

/// CREW page state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PageState {
    ReadShared(Vec<Tid>),
    Owned(Tid),
}

/// Tracks page states and builds the transition schedule.
#[derive(Default)]
struct CrewTracker {
    pages: HashMap<u64, PageState>,
    /// Per-thread instructions not yet emitted into the schedule.
    emitted_icount: BTreeMap<Tid, u64>,
    /// Latest known icount per thread (updated at every observed event).
    latest: BTreeMap<Tid, u64>,
    schedule: ScheduleLog,
    faults: u64,
    accesses: u64,
}

impl CrewTracker {
    /// Emits `tid`'s chunk up to `icount` (its current position).
    fn emit(&mut self, tid: Tid, icount: u64) {
        let done = self.emitted_icount.entry(tid).or_insert(0);
        if icount > *done {
            self.schedule.push_slice(tid, icount - *done);
            *done = icount;
        }
    }
}

impl MemObserver for CrewTracker {
    fn on_access(&mut self, a: Access) {
        self.accesses += 1;
        self.latest.insert(a.tid, a.icount);
        let page = page_of(a.addr);
        let state = self.pages.get(&page).cloned();
        let writes = a.kind.writes();
        match state {
            None => {
                self.pages.insert(
                    page,
                    if writes {
                        PageState::Owned(a.tid)
                    } else {
                        PageState::ReadShared(vec![a.tid])
                    },
                );
            }
            Some(PageState::Owned(owner)) if owner == a.tid => {}
            Some(PageState::Owned(owner)) => {
                // Transition: order the owner's chunk before this access,
                // and pin this access's position.
                self.faults += 1;
                let owner_ic = self.last_known(owner);
                self.emit(owner, owner_ic);
                self.emit(a.tid, a.icount);
                self.pages.insert(
                    page,
                    if writes {
                        PageState::Owned(a.tid)
                    } else {
                        PageState::ReadShared(vec![owner, a.tid])
                    },
                );
            }
            Some(PageState::ReadShared(readers)) => {
                if writes {
                    // Upgrade fault: order every reader's chunk first.
                    self.faults += 1;
                    for r in readers {
                        if r != a.tid {
                            let ic = self.last_known(r);
                            self.emit(r, ic);
                        }
                    }
                    self.emit(a.tid, a.icount);
                    self.pages.insert(page, PageState::Owned(a.tid));
                } else if let Some(PageState::ReadShared(rs)) = self.pages.get_mut(&page) {
                    if !rs.contains(&a.tid) {
                        // New reader: a (cheap) downgrade fault.
                        self.faults += 1;
                        rs.push(a.tid);
                    }
                }
            }
        }
    }
}

impl CrewTracker {
    /// Latest icount we know for `tid` (updated on its accesses/syscalls).
    fn last_known(&self, tid: Tid) -> u64 {
        self.latest.get(&tid).copied().unwrap_or(0)
    }
}

impl Hooks for CrewTracker {
    fn on_signal(&mut self, tid: Tid, sig: dp_vm::Word, icount: u64) {
        self.latest.insert(tid, icount);
        self.emit(tid, icount);
        self.schedule.push_signal(tid, sig);
    }

    fn on_syscall(&mut self, tid: Tid, icount: u64) {
        self.latest.insert(tid, icount);
        self.emit(tid, icount);
    }

    fn on_wake(&mut self, tid: Tid) {
        self.schedule.push_wake(tid);
    }

    fn on_thread_done(&mut self, tid: Tid, icount: u64) {
        self.latest.insert(tid, icount);
        self.emit(tid, icount);
    }
}

/// A CREW recording (single whole-run epoch in the standard format).
#[derive(Debug)]
pub struct CrewRecording {
    /// Boot checkpoint.
    pub initial: Checkpoint,
    /// Whole-run transition schedule + syscall log.
    pub epoch: EpochRecord,
    /// Measurements.
    pub stats: BaselineStats,
    /// CREW faults observed.
    pub faults: u64,
}

/// Records `spec` under the CREW protocol.
///
/// # Errors
///
/// Guest faults, deadlocks, or budget exhaustion.
pub fn record(spec: &GuestSpec, config: &DoublePlayConfig) -> Result<CrewRecording, RecordError> {
    let (mut machine, mut kernel) = spec.boot();
    let initial = Checkpoint::capture(&machine, &kernel);
    let mut tracker = CrewTracker::default();
    let out = drive(
        &mut machine,
        &mut kernel,
        config.cpus,
        config.tp_quantum,
        config.tp_jitter,
        config.hidden_seed,
        config.max_instructions,
        &mut tracker,
    )?;
    // Close out every thread's trailing chunk (deterministic order).
    let finals: Vec<(Tid, u64)> = machine
        .threads()
        .iter()
        .map(|t| (t.tid, t.icount))
        .collect();
    for (tid, ic) in finals {
        tracker.emit(tid, ic);
    }

    let cost = kernel.cost_model();
    let sched_bytes = codec::encode_schedule(&tracker.schedule).len() as u64;
    let sys_bytes = codec::encode_syscalls(&out.syscalls).len() as u64;
    let log_bytes = sched_bytes + sys_bytes;
    let recorded_cycles = out.cycles
        + (tracker.faults * cost.crew_fault + cost.log_write(log_bytes)) / config.cpus as u64;

    let stats = BaselineStats {
        recorded_cycles,
        native_cycles: measure_native(spec, config)?,
        log_bytes,
        events: tracker.faults,
        instructions: out.instructions,
    };
    Ok(CrewRecording {
        epoch: EpochRecord {
            index: 0,
            schedule: tracker.schedule,
            syscalls: out.syscalls,
            end_machine_hash: machine.state_hash(),
            external: Vec::new(),
            start: Some(initial.to_image()),
            tp_cycles: out.cycles,
        },
        initial,
        stats,
        faults: tracker.faults,
    })
}

/// Replays a CREW recording by serializing the transition chunks, and
/// verifies the final state digest.
///
/// # Errors
///
/// Any [`ReplayError`] on mismatch.
pub fn replay(recording: &CrewRecording) -> Result<(Machine, Kernel), ReplayError> {
    let (machine, kernel, _) = dp_core::replay_epoch(&recording.initial, &recording.epoch)?;
    Ok((machine, kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_workloads::Size;

    fn config() -> DoublePlayConfig {
        DoublePlayConfig {
            tp_quantum: 300,
            tp_jitter: 400,
            ..DoublePlayConfig::new(2)
        }
    }

    #[test]
    fn crew_replays_a_racy_program_exactly() {
        // The CREW claim: transition ordering is enough to replay even
        // unsynchronized races bit-for-bit.
        let case = dp_workloads::racey::counter(2, Size::Small);
        let rec = record(&case.spec, &config()).unwrap();
        assert!(rec.faults > 0, "racy counter must fault");
        let (machine, _kernel) = replay(&rec).unwrap();
        assert_eq!(machine.state_hash(), rec.epoch.end_machine_hash);
    }

    #[test]
    fn crew_replays_the_banking_race() {
        let case = dp_workloads::racey::banking(2, Size::Small);
        let rec = record(&case.spec, &config()).unwrap();
        let (machine, kernel) = replay(&rec).unwrap();
        (case.verify)(&machine, &kernel).unwrap();
    }

    #[test]
    fn crew_replays_locked_and_scientific_workloads() {
        for case in [
            dp_workloads::kvstore::build(2, Size::Small),
            dp_workloads::radix::build(2, Size::Small),
        ] {
            let rec = record(&case.spec, &config()).unwrap();
            let (machine, kernel) = replay(&rec).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            (case.verify)(&machine, &kernel).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        }
    }

    #[test]
    fn fault_rate_reflects_sharing() {
        // ocean shares grid pages across threads every iteration; pfscan
        // only shares the input read-only (reads never upgrade).
        let ocean = record(&dp_workloads::ocean::build(2, Size::Small).spec, &config()).unwrap();
        let pfscan = record(&dp_workloads::pfscan::build(2, Size::Small).spec, &config()).unwrap();
        assert!(
            ocean.faults > pfscan.faults,
            "ocean {} vs pfscan {}",
            ocean.faults,
            pfscan.faults
        );
    }
}
