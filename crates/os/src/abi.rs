//! The guest/kernel ABI: syscall numbers, argument conventions, error codes,
//! and the determinism classification that record/replay is built on.
//!
//! # Argument convention
//!
//! Arguments are taken from `r0..r5` at the trap; the result is written to
//! `r0` on completion. Errors are returned as negative values (two's
//! complement in the `u64`), checked guest-side with a signed compare.
//!
//! # Determinism classification
//!
//! DoublePlay's epoch-parallel (recorded) execution re-executes syscalls
//! whose results are a pure function of guest + kernel-snapshot state and
//! the schedule (*re-executed* class), and consumes logged results for
//! syscalls whose results depend on timing or cross the process boundary
//! (*logged* class: clock, sleep, randomness, all socket traffic, console).
//! This mirrors the paper's split between syscalls whose effects Speculator
//! can re-produce and inputs that must be logged. [`is_logged`] encodes the
//! classification; `dp-core` consults it in both the recorder and replayer.

use dp_vm::Word;

/// Halt the machine. `args: (code)`. Never returns.
pub const SYS_EXIT: u32 = 0;
/// Spawn a thread. `args: (func_id, a0, a1)` → new tid.
pub const SYS_SPAWN: u32 = 1;
/// Exit the calling thread. `args: (exit_value)`. Never returns.
pub const SYS_THREAD_EXIT: u32 = 2;
/// Wait for a thread to exit. `args: (tid)` → its exit value. Blocks.
pub const SYS_JOIN: u32 = 3;
/// Yield the processor (scheduling hint only). → 0.
pub const SYS_YIELD: u32 = 4;
/// Sleep until `mem[addr] != expected`, `args: (addr, expected)` →
/// 0 if woken, 1 if the value already differed. Blocks.
pub const SYS_FUTEX_WAIT: u32 = 5;
/// Wake up to `count` waiters on `addr`. `args: (addr, count)` → woken.
pub const SYS_FUTEX_WAKE: u32 = 6;
/// → the calling thread's id.
pub const SYS_GETTID: u32 = 7;
/// → current virtual time in cycles. **Logged.**
pub const SYS_CLOCK: u32 = 8;
/// Sleep for `args: (cycles)` → 0. Blocks. **Logged.**
pub const SYS_SLEEP: u32 = 9;
/// → 64 random bits from the kernel entropy stream. **Logged.**
pub const SYS_RANDOM: u32 = 10;
/// Grow the heap. `args: (bytes)` → previous break address.
pub const SYS_SBRK: u32 = 11;
/// Open a file. `args: (path_ptr, path_len, flags)` → fd.
pub const SYS_OPEN: u32 = 12;
/// Close an fd. `args: (fd)` → 0.
pub const SYS_CLOSE: u32 = 13;
/// Read from a file. `args: (fd, buf, len)` → bytes read.
pub const SYS_READ: u32 = 14;
/// Write to a file. `args: (fd, buf, len)` → bytes written.
pub const SYS_WRITE: u32 = 15;
/// Reposition a file offset. `args: (fd, offset, whence)` → new offset.
pub const SYS_LSEEK: u32 = 16;
/// → size in bytes of the open file `args: (fd)`.
pub const SYS_FSIZE: u32 = 17;
/// Delete a file. `args: (path_ptr, path_len)` → 0.
pub const SYS_UNLINK: u32 = 18;
/// Write bytes to the (external) console. `args: (buf, len)` → len.
/// **Logged** (external output).
pub const SYS_CONSOLE: u32 = 19;
/// Create a client socket connected to peer `args: (peer_id)` → fd.
/// **Logged.**
pub const SYS_CONNECT: u32 = 20;
/// Send on a socket. `args: (fd, buf, len)` → bytes sent. **Logged.**
pub const SYS_SEND: u32 = 21;
/// Receive from a socket. `args: (fd, buf, len)` → bytes received
/// (0 = peer closed). Blocks. **Logged.**
pub const SYS_RECV: u32 = 22;
/// Open a listening endpoint. `args: (port)` → listener fd. **Logged.**
pub const SYS_LISTEN: u32 = 23;
/// Accept a connection. `args: (listener_fd)` → socket fd. Blocks.
/// **Logged.**
pub const SYS_ACCEPT: u32 = 24;
/// Install a signal handler. `args: (sig, func_id)` → 0.
pub const SYS_SIGACTION: u32 = 25;
/// Post a signal to a thread. `args: (tid, sig)` → 0.
pub const SYS_KILL: u32 = 26;
/// Close a socket / listener. `args: (fd)` → 0. **Logged.**
pub const SYS_SOCK_CLOSE: u32 = 27;

/// Number of distinct syscalls (for table sizing / fuzzing).
pub const SYSCALL_COUNT: u32 = 28;

/// `open` flag: read-only.
pub const O_RDONLY: Word = 0;
/// `open` flag: write, create if missing, truncate.
pub const O_WRONLY: Word = 1;
/// `open` flag: read-write, create if missing, keep contents.
pub const O_RDWR: Word = 2;
/// `open` flag: write, create if missing, append.
pub const O_APPEND: Word = 3;

/// `lseek` whence: absolute.
pub const SEEK_SET: Word = 0;
/// `lseek` whence: relative to current.
pub const SEEK_CUR: Word = 1;
/// `lseek` whence: relative to end.
pub const SEEK_END: Word = 2;

/// Error: bad file descriptor.
pub const EBADF: i64 = -9;
/// Error: no such file.
pub const ENOENT: i64 = -2;
/// Error: invalid argument.
pub const EINVAL: i64 = -22;
/// Error: no such syscall.
pub const ENOSYS: i64 = -38;
/// Error: operation on something that does not support it.
pub const EPERM: i64 = -1;
/// Error: I/O error (surfaced by fault injection on file syscalls).
pub const EIO: i64 = -5;
/// Error: connection reset by peer (surfaced by fault injection on
/// socket syscalls).
pub const ECONNRESET: i64 = -104;

/// Encodes an errno as a syscall return value.
#[inline]
pub fn err(e: i64) -> Word {
    e as Word
}

/// True if a syscall return value signals an error.
#[inline]
pub fn is_err(ret: Word) -> bool {
    (ret as i64) < 0
}

/// True for syscalls whose results are **logged** during recording and
/// consumed from the log by the epoch-parallel execution and the replayer;
/// false for syscalls that are deterministically re-executed.
///
/// Futex operations are logged even though the simulated kernel could
/// re-execute them: a futex wait's block-or-return outcome races (benignly)
/// with the unlocking store, so it is timing-dependent in exactly the way
/// the paper's syscall-result logging absorbs.
pub fn is_logged(num: u32) -> bool {
    matches!(
        num,
        SYS_CLOCK
            | SYS_SLEEP
            | SYS_RANDOM
            | SYS_FUTEX_WAIT
            | SYS_FUTEX_WAKE
            | SYS_CONSOLE
            | SYS_CONNECT
            | SYS_SEND
            | SYS_RECV
            | SYS_LISTEN
            | SYS_ACCEPT
            | SYS_SOCK_CLOSE
    )
}

/// True for syscalls that may block the calling thread.
pub fn may_block(num: u32) -> bool {
    matches!(
        num,
        SYS_JOIN | SYS_FUTEX_WAIT | SYS_SLEEP | SYS_RECV | SYS_ACCEPT
    )
}

/// Human-readable name of a syscall (diagnostics, log dumps).
pub fn name(num: u32) -> &'static str {
    match num {
        SYS_EXIT => "exit",
        SYS_SPAWN => "spawn",
        SYS_THREAD_EXIT => "thread_exit",
        SYS_JOIN => "join",
        SYS_YIELD => "yield",
        SYS_FUTEX_WAIT => "futex_wait",
        SYS_FUTEX_WAKE => "futex_wake",
        SYS_GETTID => "gettid",
        SYS_CLOCK => "clock",
        SYS_SLEEP => "sleep",
        SYS_RANDOM => "random",
        SYS_SBRK => "sbrk",
        SYS_OPEN => "open",
        SYS_CLOSE => "close",
        SYS_READ => "read",
        SYS_WRITE => "write",
        SYS_LSEEK => "lseek",
        SYS_FSIZE => "fsize",
        SYS_UNLINK => "unlink",
        SYS_CONSOLE => "console",
        SYS_CONNECT => "connect",
        SYS_SEND => "send",
        SYS_RECV => "recv",
        SYS_LISTEN => "listen",
        SYS_ACCEPT => "accept",
        SYS_SIGACTION => "sigaction",
        SYS_KILL => "kill",
        SYS_SOCK_CLOSE => "sock_close",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_encoding_roundtrips() {
        assert!(is_err(err(EBADF)));
        assert!(is_err(err(ENOENT)));
        assert!(!is_err(0));
        assert!(!is_err(12345));
        assert_eq!(err(EBADF) as i64, -9);
    }

    #[test]
    fn logged_class_is_exactly_the_timing_and_boundary_syscalls() {
        let logged: Vec<u32> = (0..SYSCALL_COUNT).filter(|&n| is_logged(n)).collect();
        assert_eq!(
            logged,
            vec![
                SYS_FUTEX_WAIT,
                SYS_FUTEX_WAKE,
                SYS_CLOCK,
                SYS_SLEEP,
                SYS_RANDOM,
                SYS_CONSOLE,
                SYS_CONNECT,
                SYS_SEND,
                SYS_RECV,
                SYS_LISTEN,
                SYS_ACCEPT,
                SYS_SOCK_CLOSE
            ]
        );
    }

    #[test]
    fn blocking_class() {
        assert!(may_block(SYS_FUTEX_WAIT));
        assert!(may_block(SYS_RECV));
        assert!(!may_block(SYS_FUTEX_WAKE));
        assert!(!may_block(SYS_GETTID));
    }

    #[test]
    fn every_syscall_has_a_name() {
        for n in 0..SYSCALL_COUNT {
            assert_ne!(name(n), "unknown", "syscall {n} unnamed");
        }
        assert_eq!(name(999), "unknown");
    }
}
