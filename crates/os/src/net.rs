//! A simulated network: scripted external peers the guest can connect to,
//! and scripted external clients that connect to guest listeners.
//!
//! The external world must be *outside* the recorded process (its data is
//! input that the recorder logs) yet still deterministic enough to test
//! with, so peers and clients are declarative scripts. Their state lives in
//! the kernel and is snapshotted with it, which is what lets a rolled-back
//! execution re-consume the same network input — the simulated counterpart
//! of Speculator deferring and undoing the effects of speculative syscalls.
//!
//! Blocking is handled by the kernel; this module only answers "what would
//! this operation do right now" via [`NetPoll`].

use dp_support::wire::{Reader, Wire, WireError};
use std::collections::{BTreeMap, VecDeque};

use crate::abi::{EBADF, EINVAL, ENOENT};

/// First socket file descriptor (disjoint from file fds so the logged and
/// re-executed fd namespaces can never collide).
pub const FIRST_SOCK_FD: u32 = 1000;

/// What a scripted external peer does with a connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerBehavior {
    /// Streams a fixed byte sequence to each connection; `recv` drains it
    /// and returns EOF when exhausted. Guest sends are absorbed.
    ChunkSource {
        /// The bytes each connection receives, in order.
        chunks: Vec<Vec<u8>>,
    },
    /// Serves byte ranges of a blob: each guest send must be 16 bytes
    /// (`offset: u64 le`, `len: u64 le`); the response bytes become
    /// receivable. Used by the `aget`-style parallel-download workload.
    RangeSource {
        /// The blob ranges are served from.
        blob: Vec<u8>,
    },
    /// Answers the i-th guest send with the i-th scripted response;
    /// `recv` after the last response returns EOF.
    RequestResponse {
        /// Scripted responses, consumed in order per connection.
        responses: Vec<Vec<u8>>,
    },
    /// Every sent byte becomes receivable.
    Echo,
}

/// A scripted external client that will connect to a guest listener.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSpec {
    /// Virtual time (cycles) at which the connection arrives.
    pub arrival: u64,
    /// Guest port it connects to.
    pub port: u64,
    /// Requests sent by the client: request 0 upon accept, request *i*
    /// after the guest has sent *i* responses.
    pub requests: Vec<Vec<u8>>,
}

/// Declarative description of the whole external network.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetConfig {
    /// Peers addressable by id via `connect`.
    pub peers: BTreeMap<u32, PeerBehavior>,
    /// Scripted inbound clients.
    pub clients: Vec<ClientSpec>,
}

/// Result of a network operation attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetPoll<T> {
    /// The operation completes now.
    Ready(T),
    /// The operation must wait; if `wake_at` is set, it can definitely be
    /// retried at that virtual time (e.g. a scripted client arrival).
    WouldBlock {
        /// Earliest virtual time at which retrying may succeed, if known.
        wake_at: Option<u64>,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Endpoint {
    Peer(u32),
    Client(usize),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SockState {
    endpoint: Endpoint,
    /// Bytes available for the guest to receive.
    inbox: VecDeque<u8>,
    /// Responses remaining (RequestResponse peers).
    responses_left: usize,
    closed: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ClientState {
    spec: ClientSpec,
    accepted_fd: Option<u32>,
    /// Index of the next request not yet made receivable.
    next_req: usize,
    /// Guest responses seen so far.
    responses_seen: usize,
}

/// The simulated network. `Clone` is a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimNet {
    peers: BTreeMap<u32, PeerBehavior>,
    clients: Vec<ClientState>,
    listeners: BTreeMap<u32, u64>, // listener fd -> port
    socks: BTreeMap<u32, SockState>,
    next_fd: u32,
    /// Total bytes received by the guest (workload characterization).
    pub bytes_in: u64,
    /// Total bytes sent by the guest.
    pub bytes_out: u64,
}

impl SimNet {
    /// Builds the network world from its script.
    pub fn new(config: NetConfig) -> Self {
        SimNet {
            peers: config.peers,
            clients: config
                .clients
                .into_iter()
                .map(|spec| ClientState {
                    spec,
                    accepted_fd: None,
                    next_req: 0,
                    responses_seen: 0,
                })
                .collect(),
            listeners: BTreeMap::new(),
            socks: BTreeMap::new(),
            next_fd: FIRST_SOCK_FD,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    fn alloc_fd(&mut self) -> u32 {
        let fd = self.next_fd;
        self.next_fd += 1;
        fd
    }

    /// Connects to peer `peer_id`, returning a socket fd.
    ///
    /// # Errors
    ///
    /// `ENOENT` for unknown peers.
    pub fn connect(&mut self, peer_id: u32) -> Result<u32, i64> {
        let behavior = self.peers.get(&peer_id).ok_or(ENOENT)?.clone();
        let fd = self.alloc_fd();
        let (inbox, responses_left) = match &behavior {
            PeerBehavior::ChunkSource { chunks } => (chunks.iter().flatten().copied().collect(), 0),
            PeerBehavior::RangeSource { .. } => (VecDeque::new(), usize::MAX),
            PeerBehavior::RequestResponse { responses } => (VecDeque::new(), responses.len()),
            PeerBehavior::Echo => (VecDeque::new(), usize::MAX),
        };
        self.socks.insert(
            fd,
            SockState {
                endpoint: Endpoint::Peer(peer_id),
                inbox,
                responses_left,
                closed: false,
            },
        );
        Ok(fd)
    }

    /// Opens a listener on `port`, returning a listener fd.
    ///
    /// # Errors
    ///
    /// `EINVAL` if the port is already bound.
    pub fn listen(&mut self, port: u64) -> Result<u32, i64> {
        if self.listeners.values().any(|&p| p == port) {
            return Err(EINVAL);
        }
        let fd = self.alloc_fd();
        self.listeners.insert(fd, port);
        Ok(fd)
    }

    /// Attempts to accept a connection on `listener_fd` at virtual time
    /// `now`. Ready with the new socket fd, or would-block with the next
    /// scripted arrival time (if any remain for this port).
    ///
    /// # Errors
    ///
    /// `EBADF` for non-listener fds.
    pub fn accept(&mut self, listener_fd: u32, now: u64) -> Result<NetPoll<u32>, i64> {
        let port = *self.listeners.get(&listener_fd).ok_or(EBADF)?;
        // Earliest unaccepted arrival for this port.
        let mut best: Option<usize> = None;
        for (i, c) in self.clients.iter().enumerate() {
            if c.spec.port == port
                && c.accepted_fd.is_none()
                && best.is_none_or(|b| c.spec.arrival < self.clients[b].spec.arrival)
            {
                best = Some(i);
            }
        }
        match best {
            None => Ok(NetPoll::WouldBlock { wake_at: None }),
            Some(i) if self.clients[i].spec.arrival <= now => {
                let fd = self.alloc_fd();
                let first = self.clients[i].spec.requests.first().cloned();
                let client = &mut self.clients[i];
                client.accepted_fd = Some(fd);
                let mut inbox = VecDeque::new();
                if let Some(req) = first {
                    inbox.extend(req);
                    client.next_req = 1;
                }
                self.socks.insert(
                    fd,
                    SockState {
                        endpoint: Endpoint::Client(i),
                        inbox,
                        responses_left: usize::MAX,
                        closed: false,
                    },
                );
                Ok(NetPoll::Ready(fd))
            }
            Some(i) => Ok(NetPoll::WouldBlock {
                wake_at: Some(self.clients[i].spec.arrival),
            }),
        }
    }

    /// Sends `data` on a socket. Always completes (the external world has
    /// unbounded buffers); returns the byte count and triggers scripted
    /// reactions (responses, next client request).
    ///
    /// # Errors
    ///
    /// `EBADF` for bad or closed sockets, `EINVAL` for malformed
    /// range-server requests.
    pub fn send(&mut self, fd: u32, data: &[u8]) -> Result<u64, i64> {
        let sock = self.socks.get_mut(&fd).ok_or(EBADF)?;
        if sock.closed {
            return Err(EBADF);
        }
        self.bytes_out += data.len() as u64;
        match sock.endpoint.clone() {
            Endpoint::Peer(pid) => {
                let behavior = self.peers.get(&pid).ok_or(ENOENT)?.clone();
                let sock = self.socks.get_mut(&fd).unwrap();
                match behavior {
                    PeerBehavior::ChunkSource { .. } => {} // absorbed
                    PeerBehavior::Echo => sock.inbox.extend(data.iter().copied()),
                    PeerBehavior::RangeSource { blob } => {
                        if data.len() != 16 {
                            return Err(EINVAL);
                        }
                        let off = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
                        let len = u64::from_le_bytes(data[8..].try_into().unwrap()) as usize;
                        let start = off.min(blob.len());
                        let end = (off + len).min(blob.len());
                        sock.inbox.extend(blob[start..end].iter().copied());
                    }
                    PeerBehavior::RequestResponse { responses } => {
                        let idx = responses.len() - sock.responses_left.min(responses.len());
                        if let Some(resp) = responses.get(idx) {
                            sock.inbox.extend(resp.iter().copied());
                            sock.responses_left -= 1;
                        }
                    }
                }
            }
            Endpoint::Client(i) => {
                let client = &mut self.clients[i];
                client.responses_seen += 1;
                if client.next_req < client.spec.requests.len()
                    && client.responses_seen >= client.next_req
                {
                    let req = client.spec.requests[client.next_req].clone();
                    client.next_req += 1;
                    self.socks.get_mut(&fd).unwrap().inbox.extend(req);
                }
            }
        }
        Ok(data.len() as u64)
    }

    /// Attempts to receive up to `maxlen` bytes at time `now`. Ready with
    /// an empty vector means end-of-stream.
    ///
    /// # Errors
    ///
    /// `EBADF` for bad or closed sockets.
    pub fn recv(&mut self, fd: u32, maxlen: u64, _now: u64) -> Result<NetPoll<Vec<u8>>, i64> {
        let at_eof = {
            let sock = self.socks.get(&fd).ok_or(EBADF)?;
            if sock.closed {
                return Err(EBADF);
            }
            sock.inbox.is_empty() && self.stream_finished(sock)
        };
        let sock = self.socks.get_mut(&fd).unwrap();
        if !sock.inbox.is_empty() {
            let n = (maxlen as usize).min(sock.inbox.len());
            let data: Vec<u8> = sock.inbox.drain(..n).collect();
            self.bytes_in += data.len() as u64;
            return Ok(NetPoll::Ready(data));
        }
        if at_eof {
            return Ok(NetPoll::Ready(Vec::new()));
        }
        Ok(NetPoll::WouldBlock { wake_at: None })
    }

    fn stream_finished(&self, sock: &SockState) -> bool {
        match &sock.endpoint {
            Endpoint::Peer(pid) => match self.peers.get(pid) {
                Some(PeerBehavior::ChunkSource { .. }) => true, // preloaded
                Some(PeerBehavior::RequestResponse { .. }) => sock.responses_left == 0,
                Some(PeerBehavior::RangeSource { .. }) | Some(PeerBehavior::Echo) => false,
                None => true,
            },
            Endpoint::Client(i) => {
                let c = &self.clients[*i];
                c.next_req >= c.spec.requests.len()
            }
        }
    }

    /// Closes a socket or listener.
    ///
    /// # Errors
    ///
    /// `EBADF` if the fd is unknown.
    pub fn close(&mut self, fd: u32) -> Result<(), i64> {
        if self.listeners.remove(&fd).is_some() {
            return Ok(());
        }
        let sock = self.socks.get_mut(&fd).ok_or(EBADF)?;
        sock.closed = true;
        Ok(())
    }

    /// Earliest future scripted event (client arrival) after `now`, if any.
    pub fn next_event_after(&self, now: u64) -> Option<u64> {
        self.clients
            .iter()
            .filter(|c| c.accepted_fd.is_none() && c.spec.arrival > now)
            .map(|c| c.spec.arrival)
            .min()
    }

    /// Number of scripted clients not yet accepted.
    pub fn pending_clients(&self) -> usize {
        self.clients
            .iter()
            .filter(|c| c.accepted_fd.is_none())
            .count()
    }
}

dp_support::impl_wire_enum!(PeerBehavior {
    0 => ChunkSource { chunks },
    1 => RangeSource { blob },
    2 => RequestResponse { responses },
    3 => Echo,
});
dp_support::impl_wire_struct!(ClientSpec {
    arrival,
    port,
    requests
});
dp_support::impl_wire_struct!(NetConfig { peers, clients });

impl Wire for Endpoint {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Endpoint::Peer(id) => {
                out.push(0);
                id.put(out);
            }
            Endpoint::Client(i) => {
                out.push(1);
                i.put(out);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let off = r.pos();
        match r.u8("Endpoint tag")? {
            0 => Ok(Endpoint::Peer(Wire::get(r)?)),
            1 => Ok(Endpoint::Client(Wire::get(r)?)),
            _ => Err(WireError {
                offset: off,
                context: "unknown Endpoint tag",
            }),
        }
    }
}

dp_support::impl_wire_struct!(SockState {
    endpoint,
    inbox,
    responses_left,
    closed
});
dp_support::impl_wire_struct!(ClientState {
    spec,
    accepted_fd,
    next_req,
    responses_seen
});
dp_support::impl_wire_struct!(SimNet {
    peers,
    clients,
    listeners,
    socks,
    next_fd,
    bytes_in,
    bytes_out,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn net_with_peer(behavior: PeerBehavior) -> SimNet {
        let mut cfg = NetConfig::default();
        cfg.peers.insert(7, behavior);
        SimNet::new(cfg)
    }

    #[test]
    fn chunk_source_streams_then_eof() {
        let mut net = net_with_peer(PeerBehavior::ChunkSource {
            chunks: vec![b"ab".to_vec(), b"cd".to_vec()],
        });
        let fd = net.connect(7).unwrap();
        assert_eq!(net.recv(fd, 3, 0).unwrap(), NetPoll::Ready(b"abc".to_vec()));
        assert_eq!(net.recv(fd, 10, 0).unwrap(), NetPoll::Ready(b"d".to_vec()));
        assert_eq!(net.recv(fd, 10, 0).unwrap(), NetPoll::Ready(vec![])); // EOF
        assert_eq!(net.bytes_in, 4);
    }

    #[test]
    fn range_source_serves_ranges() {
        let mut net = net_with_peer(PeerBehavior::RangeSource {
            blob: (0u8..100).collect(),
        });
        let fd = net.connect(7).unwrap();
        let mut req = Vec::new();
        req.extend(10u64.to_le_bytes());
        req.extend(5u64.to_le_bytes());
        net.send(fd, &req).unwrap();
        assert_eq!(
            net.recv(fd, 100, 0).unwrap(),
            NetPoll::Ready(vec![10, 11, 12, 13, 14])
        );
        // No outstanding request: blocks rather than EOF.
        assert!(matches!(
            net.recv(fd, 100, 0).unwrap(),
            NetPoll::WouldBlock { .. }
        ));
        assert_eq!(net.send(fd, b"short"), Err(EINVAL));
    }

    #[test]
    fn request_response_in_order_then_eof() {
        let mut net = net_with_peer(PeerBehavior::RequestResponse {
            responses: vec![b"one".to_vec(), b"two".to_vec()],
        });
        let fd = net.connect(7).unwrap();
        assert!(matches!(
            net.recv(fd, 10, 0).unwrap(),
            NetPoll::WouldBlock { .. }
        ));
        net.send(fd, b"q1").unwrap();
        assert_eq!(
            net.recv(fd, 10, 0).unwrap(),
            NetPoll::Ready(b"one".to_vec())
        );
        net.send(fd, b"q2").unwrap();
        assert_eq!(
            net.recv(fd, 10, 0).unwrap(),
            NetPoll::Ready(b"two".to_vec())
        );
        assert_eq!(net.recv(fd, 10, 0).unwrap(), NetPoll::Ready(vec![]));
    }

    #[test]
    fn echo_reflects_sends() {
        let mut net = net_with_peer(PeerBehavior::Echo);
        let fd = net.connect(7).unwrap();
        net.send(fd, b"ping").unwrap();
        assert_eq!(
            net.recv(fd, 10, 0).unwrap(),
            NetPoll::Ready(b"ping".to_vec())
        );
    }

    #[test]
    fn accept_respects_arrival_times() {
        let mut net = SimNet::new(NetConfig {
            peers: BTreeMap::new(),
            clients: vec![
                ClientSpec {
                    arrival: 100,
                    port: 80,
                    requests: vec![b"GET".to_vec()],
                },
                ClientSpec {
                    arrival: 50,
                    port: 80,
                    requests: vec![b"PUT".to_vec()],
                },
            ],
        });
        let lfd = net.listen(80).unwrap();
        assert_eq!(
            net.accept(lfd, 10).unwrap(),
            NetPoll::WouldBlock { wake_at: Some(50) }
        );
        // Earliest arrival is accepted first regardless of script order.
        let fd = match net.accept(lfd, 60).unwrap() {
            NetPoll::Ready(fd) => fd,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            net.recv(fd, 10, 60).unwrap(),
            NetPoll::Ready(b"PUT".to_vec())
        );
        assert_eq!(net.next_event_after(60), Some(100));
        assert_eq!(net.pending_clients(), 1);
    }

    #[test]
    fn client_request_flow_control() {
        let mut net = SimNet::new(NetConfig {
            peers: BTreeMap::new(),
            clients: vec![ClientSpec {
                arrival: 0,
                port: 80,
                requests: vec![b"r1".to_vec(), b"r2".to_vec()],
            }],
        });
        let lfd = net.listen(80).unwrap();
        let fd = match net.accept(lfd, 0).unwrap() {
            NetPoll::Ready(fd) => fd,
            other => panic!("{other:?}"),
        };
        assert_eq!(net.recv(fd, 10, 0).unwrap(), NetPoll::Ready(b"r1".to_vec()));
        // Second request only after the guest responds.
        assert!(matches!(
            net.recv(fd, 10, 0).unwrap(),
            NetPoll::WouldBlock { .. }
        ));
        net.send(fd, b"resp1").unwrap();
        assert_eq!(net.recv(fd, 10, 0).unwrap(), NetPoll::Ready(b"r2".to_vec()));
        net.send(fd, b"resp2").unwrap();
        assert_eq!(net.recv(fd, 10, 0).unwrap(), NetPoll::Ready(vec![])); // EOF
    }

    #[test]
    fn errors() {
        let mut net = SimNet::new(NetConfig::default());
        assert_eq!(net.connect(99), Err(ENOENT));
        assert_eq!(net.send(5, b"x"), Err(EBADF));
        assert_eq!(net.recv(5, 1, 0).err(), Some(EBADF));
        assert_eq!(net.accept(5, 0).err(), Some(EBADF));
        assert_eq!(net.close(5), Err(EBADF));
        let l = net.listen(80).unwrap();
        assert_eq!(net.listen(80), Err(EINVAL));
        assert_eq!(net.close(l), Ok(()));
        // Port free again after close.
        assert!(net.listen(80).is_ok());
    }

    #[test]
    fn closed_socket_rejects_io() {
        let mut net = net_with_peer(PeerBehavior::Echo);
        let fd = net.connect(7).unwrap();
        net.close(fd).unwrap();
        assert_eq!(net.send(fd, b"x"), Err(EBADF));
        assert_eq!(net.recv(fd, 1, 0).err(), Some(EBADF));
    }

    #[test]
    fn fd_allocation_deterministic_and_disjoint_from_files() {
        let mut net = net_with_peer(PeerBehavior::Echo);
        let fd = net.connect(7).unwrap();
        assert!(fd >= FIRST_SOCK_FD);
        let mut net2 = net_with_peer(PeerBehavior::Echo);
        assert_eq!(net2.connect(7).unwrap(), fd);
    }
}
