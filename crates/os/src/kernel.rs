//! The simulated kernel: syscall dispatch, blocking and wakeups, virtual
//! timers, signals, and the speculative external-output journal.
//!
//! A `Kernel` pairs with one [`dp_vm::Machine`] but is owned by the driver,
//! not the machine, because DoublePlay snapshots and rolls back *both*
//! together: a checkpoint is `(Machine, Kernel)` and restoring it undoes
//! every speculative kernel effect — the role Speculator plays in the paper.
//!
//! The kernel performs all machine mutations for syscalls it executes
//! (spawning threads, completing syscalls, halting), so drivers only decide
//! *scheduling*: which thread runs next and when virtual time advances.
//! Record/replay layers that consume logged results instead bypass
//! [`Kernel::handle`] entirely and complete syscalls on the machine
//! themselves.

use dp_vm::{FuncId, Machine, SyscallRequest, ThreadStatus, Tid, Word};
use std::collections::{BTreeMap, VecDeque};

use crate::abi::{self, err, ECONNRESET, EINVAL, EIO, ENOSYS};
use crate::cost::CostModel;
use crate::faults::IoFaults;
use crate::fs::SimFs;
use crate::net::{NetConfig, NetPoll, SimNet};

/// Destination of a chunk of external (world-visible) output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExternalDest {
    /// The console stream.
    Console,
    /// An outbound peer connection (socket fd).
    Socket(u32),
}

/// One chunk of external output, buffered speculatively until the epoch
/// that produced it commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalChunk {
    /// Where the bytes go.
    pub dest: ExternalDest,
    /// The bytes.
    pub bytes: Vec<u8>,
}

/// The full observable outcome of a completed syscall — exactly what must
/// be logged so the epoch-parallel execution and the replayer can reproduce
/// it without a kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyscallEffect {
    /// Bytes the kernel wrote into guest memory (e.g. `recv` data).
    pub guest_writes: Vec<(Word, Vec<u8>)>,
    /// External output produced (e.g. `send` payload).
    pub external: Vec<ExternalChunk>,
}

impl SyscallEffect {
    /// Total bytes moved (for cost accounting and log sizing).
    pub fn bytes(&self) -> u64 {
        self.guest_writes
            .iter()
            .map(|(_, b)| b.len() as u64)
            .sum::<u64>()
            + self
                .external
                .iter()
                .map(|c| c.bytes.len() as u64)
                .sum::<u64>()
    }
}

/// How a syscall left the calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Completed; the result has been written to the thread's `r0` and the
    /// thread is runnable again.
    Done {
        /// The value returned to the guest.
        ret: Word,
    },
    /// The thread is blocked; a later [`Wake`] will complete it.
    Blocked,
    /// The calling thread exited (`thread_exit`).
    ThreadExited,
    /// The whole machine halted (`exit`).
    Halted {
        /// Machine exit code.
        code: Word,
    },
}

/// A deferred syscall completion (blocked thread woken).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wake {
    /// Thread whose syscall completed.
    pub tid: Tid,
    /// Syscall number that had blocked.
    pub num: u32,
    /// The original request that blocked (recorders digest its arguments).
    pub req: SyscallRequest,
    /// Result returned to the guest.
    pub ret: Word,
    /// Observable side effects delivered at wake time.
    pub effect: SyscallEffect,
}

/// Everything [`Kernel::handle`] tells the driver about one syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysOutcome {
    /// What happened to the calling thread.
    pub disposition: Disposition,
    /// Simulated cycles charged for the call.
    pub cost: u64,
    /// Observable effects of an immediately-completed call.
    pub effect: SyscallEffect,
    /// Other threads whose blocked syscalls completed as a consequence
    /// (futex wakes, request arrivals, ...). Already applied to the machine.
    pub wakes: Vec<Wake>,
}

/// Cumulative kernel statistics (workload characterization, Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Total syscalls serviced.
    pub syscalls: u64,
    /// Syscalls in the logged (nondeterministic) class.
    pub logged_syscalls: u64,
    /// Futex waits that actually blocked.
    pub futex_blocks: u64,
    /// Bytes moved by logged-class syscalls (log payload estimate).
    pub logged_bytes: u64,
    /// Injected I/O faults actually delivered to the guest (failures,
    /// short reads, connection resets). Diagnostic only: never part of
    /// divergence checks, and it rolls back with checkpoints, so the
    /// final value counts faults on the committed timeline.
    pub injected_faults: u64,
}

/// Declarative description of the world a guest runs in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorldConfig {
    /// Files present before execution.
    pub files: Vec<(String, Vec<u8>)>,
    /// The external network script.
    pub net: NetConfig,
    /// Seed for the kernel entropy stream (`SYS_RANDOM`).
    pub rng_seed: u64,
    /// The cost model used for cycle accounting.
    pub cost: CostModel,
    /// Deterministic syscall fault-injection plan (default: no faults).
    pub faults: IoFaults,
}

/// The simulated kernel. `Clone` is a checkpoint of all kernel state.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    fs: SimFs,
    net: SimNet,
    rng_state: u64,
    brk: Word,
    cost: CostModel,
    faults: IoFaults,
    futex: BTreeMap<Word, VecDeque<Tid>>,
    join_waiters: BTreeMap<Tid, Vec<Tid>>,
    sleepers: BTreeMap<(u64, Tid), ()>,
    net_blocked: BTreeMap<Tid, SyscallRequest>,
    /// The request each currently-blocked thread trapped with (uniform
    /// bookkeeping across futex/join/sleep/net blocking).
    blocked_reqs: BTreeMap<Tid, SyscallRequest>,
    sig_handlers: BTreeMap<Word, FuncId>,
    sig_pending: BTreeMap<Tid, VecDeque<Word>>,
    external: Vec<ExternalChunk>,
    /// Cumulative statistics.
    pub stats: KernelStats,
}

impl Kernel {
    /// Builds a kernel from a world description.
    pub fn new(config: WorldConfig) -> Self {
        let mut fs = SimFs::new();
        for (path, contents) in config.files {
            fs.preload(&path, contents);
        }
        Kernel {
            fs,
            net: SimNet::new(config.net),
            rng_state: config.rng_seed ^ 0x9e37_79b9_7f4a_7c15,
            brk: dp_vm::HEAP_BASE,
            cost: config.cost,
            faults: config.faults,
            futex: BTreeMap::new(),
            join_waiters: BTreeMap::new(),
            sleepers: BTreeMap::new(),
            net_blocked: BTreeMap::new(),
            blocked_reqs: BTreeMap::new(),
            sig_handlers: BTreeMap::new(),
            sig_pending: BTreeMap::new(),
            external: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Replaces the syscall fault-injection plan. Recorders call this at
    /// boot so the plan rides inside every checkpoint and replay sees the
    /// same injected faults.
    pub fn set_io_faults(&mut self, faults: IoFaults) {
        self.faults = faults;
    }

    /// The syscall fault-injection plan in effect.
    pub fn io_faults(&self) -> &IoFaults {
        &self.faults
    }

    /// Read access to the filesystem (verification in tests/examples).
    pub fn fs(&self) -> &SimFs {
        &self.fs
    }

    /// Read access to the network (verification in tests/examples).
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Drains the buffered external output (the commit step).
    pub fn take_external(&mut self) -> Vec<ExternalChunk> {
        std::mem::take(&mut self.external)
    }

    /// Buffered external output without draining.
    pub fn external(&self) -> &[ExternalChunk] {
        &self.external
    }

    /// Earliest future event the kernel knows about (sleep deadline or
    /// scripted client arrival relevant to a blocked accept), after `now`.
    /// Drivers use this to advance virtual time when all threads are idle.
    pub fn next_event_time(&self, now: u64) -> Option<u64> {
        let sleep = self.sleepers.keys().map(|(d, _)| *d).find(|&d| d > now);
        let net = if self.net_blocked.is_empty() {
            None
        } else {
            self.net.next_event_after(now)
        };
        match (sleep, net) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advances virtual time: expires due sleepers and retries blocked
    /// network operations. Returns the completions performed.
    pub fn advance_time(&mut self, machine: &mut Machine, now: u64) -> Vec<Wake> {
        let mut wakes = Vec::new();
        let due: Vec<(u64, Tid)> = self
            .sleepers
            .keys()
            .copied()
            .filter(|(d, _)| *d <= now)
            .collect();
        for key in due {
            self.sleepers.remove(&key);
            let tid = key.1;
            if self.complete(machine, tid, 0) {
                let req = self.take_blocked_req(tid, abi::SYS_SLEEP);
                wakes.push(Wake {
                    tid,
                    num: abi::SYS_SLEEP,
                    req,
                    ret: 0,
                    effect: SyscallEffect::default(),
                });
            }
        }
        self.retry_net(machine, now, &mut wakes);
        wakes
    }

    /// Notifies the kernel that `tid` exited by returning from its bottom
    /// frame (no syscall involved); wakes its joiners.
    pub fn on_thread_exited(&mut self, machine: &mut Machine, tid: Tid) -> Vec<Wake> {
        let mut wakes = Vec::new();
        self.wake_joiners(machine, tid, &mut wakes);
        wakes
    }

    /// Pops one pending signal for `tid` if a handler is installed.
    /// The driver delivers it with [`dp_vm::Machine::push_signal_frame`].
    pub fn take_pending_signal(&mut self, tid: Tid) -> Option<(Word, FuncId)> {
        let queue = self.sig_pending.get_mut(&tid)?;
        while let Some(sig) = queue.pop_front() {
            if let Some(&handler) = self.sig_handlers.get(&sig) {
                return Some((sig, handler));
            }
        }
        None
    }

    /// True if any thread has a deliverable pending signal (driver fast path).
    pub fn has_pending_signals(&self) -> bool {
        self.sig_pending
            .values()
            .any(|q| q.iter().any(|s| self.sig_handlers.contains_key(s)))
    }

    /// Services a syscall trap. All machine mutations (thread spawn/exit,
    /// completion, halt) are performed here; the driver handles scheduling
    /// and cycle accounting using the returned cost.
    ///
    /// # Panics
    ///
    /// Panics if `req` does not match a thread in `Waiting` state (driver
    /// bug).
    pub fn handle(&mut self, machine: &mut Machine, req: SyscallRequest, now: u64) -> SysOutcome {
        let tid = req.tid;
        assert_eq!(
            machine.thread(tid).status,
            ThreadStatus::Waiting,
            "syscall from non-waiting thread"
        );
        self.stats.syscalls += 1;
        if abi::is_logged(req.num) {
            self.stats.logged_syscalls += 1;
        }
        let mut effect = SyscallEffect::default();
        let mut wakes = Vec::new();
        let mut cost_bytes = 0u64;
        let a = req.args;
        // Fault decisions key on the thread's icount at the trap, which is a
        // property of the guest's own execution path — so the same trap is
        // failed (or not) identically in every run that reaches it.
        let icount = machine.thread(tid).icount;

        let disposition = match req.num {
            abi::SYS_EXIT => {
                machine.halt(a[0]);
                // Halting exits every thread; blocked bookkeeping is moot.
                Disposition::Halted { code: a[0] }
            }
            abi::SYS_SPAWN => {
                let func = FuncId(a[0] as u32);
                if machine.program().function(func).is_none() {
                    self.finish(machine, tid, err(EINVAL))
                } else {
                    let new_tid = machine.spawn_thread(func, &[a[1], a[2]]);
                    self.finish(machine, tid, new_tid.0 as Word)
                }
            }
            abi::SYS_THREAD_EXIT => {
                machine.exit_thread(tid, a[0]);
                self.wake_joiners(machine, tid, &mut wakes);
                Disposition::ThreadExited
            }
            abi::SYS_JOIN => {
                let target = Tid(a[0] as u32);
                if target.index() >= machine.threads().len() || target == tid {
                    self.finish(machine, tid, err(EINVAL))
                } else if machine.thread(target).is_exited() {
                    let v = machine.thread(target).exit_value;
                    self.finish(machine, tid, v)
                } else {
                    self.join_waiters.entry(target).or_default().push(tid);
                    Disposition::Blocked
                }
            }
            abi::SYS_YIELD => self.finish(machine, tid, 0),
            abi::SYS_FUTEX_WAIT => {
                let addr = a[0];
                let expected = a[1];
                if machine.mem().read(addr, dp_vm::Width::W8) != expected {
                    self.finish(machine, tid, 1)
                } else {
                    self.futex.entry(addr).or_default().push_back(tid);
                    self.stats.futex_blocks += 1;
                    Disposition::Blocked
                }
            }
            abi::SYS_FUTEX_WAKE => {
                let addr = a[0];
                let count = a[1];
                let mut woken = 0u64;
                while woken < count {
                    let next = self.futex.get_mut(&addr).and_then(|q| q.pop_front());
                    match next {
                        Some(w) => {
                            if self.complete(machine, w, 0) {
                                let req = self.take_blocked_req(w, abi::SYS_FUTEX_WAIT);
                                wakes.push(Wake {
                                    tid: w,
                                    num: abi::SYS_FUTEX_WAIT,
                                    req,
                                    ret: 0,
                                    effect: SyscallEffect::default(),
                                });
                                woken += 1;
                            }
                        }
                        None => break,
                    }
                }
                if self.futex.get(&addr).is_some_and(|q| q.is_empty()) {
                    self.futex.remove(&addr);
                }
                self.finish(machine, tid, woken)
            }
            abi::SYS_GETTID => self.finish(machine, tid, tid.0 as Word),
            abi::SYS_CLOCK => self.finish(machine, tid, now),
            abi::SYS_SLEEP => {
                let deadline = now.saturating_add(a[0]);
                self.sleepers.insert((deadline, tid), ());
                Disposition::Blocked
            }
            abi::SYS_RANDOM => {
                let v = self.next_random();
                self.finish(machine, tid, v)
            }
            abi::SYS_SBRK => {
                let old = self.brk;
                self.brk = self.brk.saturating_add(a[0]);
                self.finish(machine, tid, old)
            }
            abi::SYS_OPEN => {
                let path = self.read_path(machine, a[0], a[1]);
                let ret = if self.faults.fail(tid.0, icount, req.num) {
                    self.stats.injected_faults += 1;
                    err(EIO)
                } else {
                    match self.fs.open(&path, a[2]) {
                        Ok(fd) => fd as Word,
                        Err(e) => err(e),
                    }
                };
                self.finish(machine, tid, ret)
            }
            abi::SYS_CLOSE => {
                let ret = match self.fs.close(a[0] as u32) {
                    Ok(()) => 0,
                    Err(e) => err(e),
                };
                self.finish(machine, tid, ret)
            }
            abi::SYS_READ => {
                // A short read shrinks the requested length up front, so the
                // fd offset stays consistent with the bytes delivered.
                let len = match self.faults.short_len(tid.0, icount, req.num, a[2]) {
                    Some(short) => {
                        self.stats.injected_faults += 1;
                        short
                    }
                    None => a[2],
                };
                let ret = if self.faults.fail(tid.0, icount, req.num) {
                    self.stats.injected_faults += 1;
                    err(EIO)
                } else {
                    match self.fs.read(a[0] as u32, len) {
                        Ok(data) => {
                            cost_bytes = data.len() as u64;
                            machine.mem_mut().write_bytes(a[1], &data);
                            // Filesystem state is part of the checkpointed
                            // world, so reads are re-executed rather than
                            // logged; the effect is still reported for
                            // instrumentation.
                            let n = data.len() as Word;
                            effect.guest_writes.push((a[1], data));
                            n
                        }
                        Err(e) => err(e),
                    }
                };
                self.finish(machine, tid, ret)
            }
            abi::SYS_WRITE => {
                let data = machine.mem().read_bytes(a[1], a[2] as usize);
                cost_bytes = data.len() as u64;
                let ret = match self.fs.write(a[0] as u32, &data) {
                    Ok(n) => n,
                    Err(e) => err(e),
                };
                self.finish(machine, tid, ret)
            }
            abi::SYS_LSEEK => {
                let ret = match self.fs.lseek(a[0] as u32, a[1] as i64, a[2]) {
                    Ok(off) => off,
                    Err(e) => err(e),
                };
                self.finish(machine, tid, ret)
            }
            abi::SYS_FSIZE => {
                let ret = match self.fs.fsize(a[0] as u32) {
                    Ok(n) => n,
                    Err(e) => err(e),
                };
                self.finish(machine, tid, ret)
            }
            abi::SYS_UNLINK => {
                let path = self.read_path(machine, a[0], a[1]);
                let ret = match self.fs.unlink(&path) {
                    Ok(()) => 0,
                    Err(e) => err(e),
                };
                self.finish(machine, tid, ret)
            }
            abi::SYS_CONSOLE => {
                let data = machine.mem().read_bytes(a[0], a[1] as usize);
                cost_bytes = data.len() as u64;
                let chunk = ExternalChunk {
                    dest: ExternalDest::Console,
                    bytes: data,
                };
                self.external.push(chunk.clone());
                effect.external.push(chunk);
                self.finish(machine, tid, a[1])
            }
            abi::SYS_CONNECT => {
                let ret = match self.net.connect(a[0] as u32) {
                    Ok(fd) => fd as Word,
                    Err(e) => err(e),
                };
                self.finish(machine, tid, ret)
            }
            abi::SYS_SEND if self.faults.reset(tid.0, icount, req.num) => {
                // Injected connection reset: the payload never reaches the
                // network, so no external chunk is journaled.
                self.stats.injected_faults += 1;
                self.finish(machine, tid, err(ECONNRESET))
            }
            abi::SYS_SEND => {
                let data = machine.mem().read_bytes(a[1], a[2] as usize);
                cost_bytes = data.len() as u64;
                let ret = match self.net.send(a[0] as u32, &data) {
                    Ok(n) => {
                        let chunk = ExternalChunk {
                            dest: ExternalDest::Socket(a[0] as u32),
                            bytes: data,
                        };
                        self.external.push(chunk.clone());
                        effect.external.push(chunk);
                        // Sending may unblock receivers (echo/other threads).
                        self.retry_net(machine, now, &mut wakes);
                        n
                    }
                    Err(e) => err(e),
                };
                self.finish(machine, tid, ret)
            }
            abi::SYS_RECV if self.faults.reset(tid.0, icount, req.num) => {
                self.stats.injected_faults += 1;
                self.finish(machine, tid, err(ECONNRESET))
            }
            abi::SYS_RECV => {
                // A short read shrinks the requested buffer length before the
                // receive; undrained bytes stay queued for later receives.
                let maxlen = match self.faults.short_len(tid.0, icount, req.num, a[2]) {
                    Some(short) => {
                        self.stats.injected_faults += 1;
                        short
                    }
                    None => a[2],
                };
                match self.net.recv(a[0] as u32, maxlen, now) {
                    Err(e) => self.finish(machine, tid, err(e)),
                    Ok(NetPoll::Ready(data)) => {
                        cost_bytes = data.len() as u64;
                        machine.mem_mut().write_bytes(a[1], &data);
                        let n = data.len() as Word;
                        effect.guest_writes.push((a[1], data));
                        self.finish(machine, tid, n)
                    }
                    Ok(NetPoll::WouldBlock { .. }) => {
                        self.net_blocked.insert(tid, req);
                        Disposition::Blocked
                    }
                }
            }
            abi::SYS_LISTEN => {
                let ret = match self.net.listen(a[0]) {
                    Ok(fd) => fd as Word,
                    Err(e) => err(e),
                };
                self.finish(machine, tid, ret)
            }
            abi::SYS_ACCEPT => match self.net.accept(a[0] as u32, now) {
                Err(e) => self.finish(machine, tid, err(e)),
                Ok(NetPoll::Ready(fd)) => self.finish(machine, tid, fd as Word),
                Ok(NetPoll::WouldBlock { .. }) => {
                    self.net_blocked.insert(tid, req);
                    Disposition::Blocked
                }
            },
            abi::SYS_SIGACTION => {
                self.sig_handlers.insert(a[0], FuncId(a[1] as u32));
                self.finish(machine, tid, 0)
            }
            abi::SYS_KILL => {
                let target = Tid(a[0] as u32);
                if target.index() >= machine.threads().len() {
                    self.finish(machine, tid, err(EINVAL))
                } else {
                    self.sig_pending.entry(target).or_default().push_back(a[1]);
                    self.finish(machine, tid, 0)
                }
            }
            abi::SYS_SOCK_CLOSE => {
                let ret = match self.net.close(a[0] as u32) {
                    Ok(()) => 0,
                    Err(e) => err(e),
                };
                self.finish(machine, tid, ret)
            }
            _ => self.finish(machine, tid, err(ENOSYS)),
        };

        if abi::is_logged(req.num) {
            self.stats.logged_bytes += cost_bytes + 8;
        }
        if disposition == Disposition::Blocked {
            self.blocked_reqs.insert(tid, req);
        }
        SysOutcome {
            disposition,
            cost: self.cost.syscall(cost_bytes),
            effect,
            wakes,
        }
    }

    /// Completes a syscall on a thread if it is still waiting. Returns
    /// whether the completion happened (false if the thread exited, e.g.
    /// because the machine halted while it was blocked).
    fn complete(&mut self, machine: &mut Machine, tid: Tid, ret: Word) -> bool {
        if machine.thread(tid).status == ThreadStatus::Waiting {
            machine.complete_syscall(tid, ret);
            true
        } else {
            false
        }
    }

    fn take_blocked_req(&mut self, tid: Tid, num: u32) -> SyscallRequest {
        self.blocked_reqs.remove(&tid).unwrap_or(SyscallRequest {
            tid,
            num,
            args: [0; 6],
        })
    }

    fn finish(&mut self, machine: &mut Machine, tid: Tid, ret: Word) -> Disposition {
        machine.complete_syscall(tid, ret);
        Disposition::Done { ret }
    }

    fn wake_joiners(&mut self, machine: &mut Machine, exited: Tid, wakes: &mut Vec<Wake>) {
        let exit_value = machine.thread(exited).exit_value;
        if let Some(waiters) = self.join_waiters.remove(&exited) {
            for w in waiters {
                if self.complete(machine, w, exit_value) {
                    let req = self.take_blocked_req(w, abi::SYS_JOIN);
                    wakes.push(Wake {
                        tid: w,
                        num: abi::SYS_JOIN,
                        req,
                        ret: exit_value,
                        effect: SyscallEffect::default(),
                    });
                }
            }
        }
    }

    fn retry_net(&mut self, machine: &mut Machine, now: u64, wakes: &mut Vec<Wake>) {
        let blocked: Vec<(Tid, SyscallRequest)> =
            self.net_blocked.iter().map(|(t, r)| (*t, *r)).collect();
        for (tid, req) in blocked {
            if machine.thread(tid).status != ThreadStatus::Waiting {
                self.net_blocked.remove(&tid);
                continue;
            }
            let a = req.args;
            match req.num {
                abi::SYS_RECV => match self.net.recv(a[0] as u32, a[2], now) {
                    Err(e) => {
                        self.net_blocked.remove(&tid);
                        if self.complete(machine, tid, err(e)) {
                            self.blocked_reqs.remove(&tid);
                            wakes.push(Wake {
                                tid,
                                num: req.num,
                                req,
                                ret: err(e),
                                effect: SyscallEffect::default(),
                            });
                        }
                    }
                    Ok(NetPoll::Ready(data)) => {
                        self.net_blocked.remove(&tid);
                        machine.mem_mut().write_bytes(a[1], &data);
                        let n = data.len() as Word;
                        let mut effect = SyscallEffect::default();
                        effect.guest_writes.push((a[1], data));
                        if self.complete(machine, tid, n) {
                            self.blocked_reqs.remove(&tid);
                            wakes.push(Wake {
                                tid,
                                num: req.num,
                                req,
                                ret: n,
                                effect,
                            });
                        }
                    }
                    Ok(NetPoll::WouldBlock { .. }) => {}
                },
                abi::SYS_ACCEPT => match self.net.accept(a[0] as u32, now) {
                    Err(e) => {
                        self.net_blocked.remove(&tid);
                        if self.complete(machine, tid, err(e)) {
                            self.blocked_reqs.remove(&tid);
                            wakes.push(Wake {
                                tid,
                                num: req.num,
                                req,
                                ret: err(e),
                                effect: SyscallEffect::default(),
                            });
                        }
                    }
                    Ok(NetPoll::Ready(fd)) => {
                        self.net_blocked.remove(&tid);
                        if self.complete(machine, tid, fd as Word) {
                            self.blocked_reqs.remove(&tid);
                            wakes.push(Wake {
                                tid,
                                num: req.num,
                                req,
                                ret: fd as Word,
                                effect: SyscallEffect::default(),
                            });
                        }
                    }
                    Ok(NetPoll::WouldBlock { .. }) => {}
                },
                other => unreachable!("non-network syscall {other} in net_blocked"),
            }
        }
    }

    fn next_random(&mut self) -> u64 {
        // SplitMix64: deterministic given the seed; classified as *logged*
        // anyway because a real kernel's entropy is not reproducible.
        self.rng_state = self.rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn read_path(&self, machine: &Machine, ptr: Word, len: Word) -> String {
        let bytes = machine.mem().read_bytes(ptr, (len as usize).min(4096));
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

mod wire_impls {
    use super::*;
    use dp_support::wire::{Reader, Wire, WireError};

    impl Wire for ExternalDest {
        fn put(&self, out: &mut Vec<u8>) {
            match self {
                ExternalDest::Console => out.push(0),
                ExternalDest::Socket(fd) => {
                    out.push(1);
                    fd.put(out);
                }
            }
        }
        fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
            let off = r.pos();
            match r.u8("ExternalDest tag")? {
                0 => Ok(ExternalDest::Console),
                1 => Ok(ExternalDest::Socket(u32::get(r)?)),
                _ => Err(WireError {
                    offset: off,
                    context: "unknown ExternalDest tag",
                }),
            }
        }
    }

    dp_support::impl_wire_struct!(ExternalChunk { dest, bytes });
    dp_support::impl_wire_struct!(SyscallEffect {
        guest_writes,
        external
    });
    dp_support::impl_wire_struct!(KernelStats {
        syscalls,
        logged_syscalls,
        futex_blocks,
        logged_bytes,
        injected_faults
    });
    dp_support::impl_wire_struct!(WorldConfig {
        files,
        net,
        rng_seed,
        cost,
        faults
    });
    dp_support::impl_wire_struct!(Kernel {
        fs,
        net,
        rng_state,
        brk,
        cost,
        faults,
        futex,
        join_waiters,
        sleepers,
        net_blocked,
        blocked_reqs,
        sig_handlers,
        sig_pending,
        external,
        stats
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_vm::builder::ProgramBuilder;
    use dp_vm::observer::NullObserver;
    use dp_vm::{Machine, Reg, SliceLimits, StopReason};
    use std::sync::Arc;

    fn world() -> WorldConfig {
        WorldConfig {
            files: vec![("in.txt".into(), b"file-data".to_vec())],
            net: NetConfig::default(),
            rng_seed: 42,
            cost: CostModel::default(),
            faults: IoFaults::none(),
        }
    }

    /// Builds a machine whose main traps with the given syscall args.
    fn trap_machine(num: u32, args: &[i64]) -> (Machine, SyscallRequest) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        for (i, &v) in args.iter().enumerate() {
            f.consti(Reg(i as u8), v);
        }
        f.syscall(num);
        f.ret();
        f.finish();
        let mut m = Machine::new(Arc::new(pb.finish("main")), &[]);
        let run = m
            .run_slice(Tid(0), SliceLimits::budget(100), &mut NullObserver)
            .unwrap();
        let req = match run.stop {
            StopReason::Syscall(r) => r,
            other => panic!("expected trap, got {other:?}"),
        };
        (m, req)
    }

    #[test]
    fn gettid_and_clock() {
        let (mut m, req) = trap_machine(abi::SYS_GETTID, &[]);
        let mut k = Kernel::new(world());
        let out = k.handle(&mut m, req, 555);
        assert_eq!(out.disposition, Disposition::Done { ret: 0 });
        assert_eq!(m.thread(Tid(0)).regs[0], 0);

        let (mut m, req) = trap_machine(abi::SYS_CLOCK, &[]);
        let out = k.handle(&mut m, req, 555);
        assert_eq!(out.disposition, Disposition::Done { ret: 555 });
    }

    #[test]
    fn exit_halts_machine() {
        let (mut m, req) = trap_machine(abi::SYS_EXIT, &[3]);
        let mut k = Kernel::new(world());
        let out = k.handle(&mut m, req, 0);
        assert_eq!(out.disposition, Disposition::Halted { code: 3 });
        assert_eq!(m.halted(), Some(3));
    }

    #[test]
    fn spawn_creates_runnable_thread() {
        let (mut m, req) = trap_machine(abi::SYS_SPAWN, &[0, 77, 0]);
        let mut k = Kernel::new(world());
        let out = k.handle(&mut m, req, 0);
        assert_eq!(out.disposition, Disposition::Done { ret: 1 });
        assert_eq!(m.live_threads(), 2);
        assert_eq!(m.thread(Tid(1)).regs[0], 77);
    }

    #[test]
    fn spawn_bad_function_is_einval() {
        let (mut m, req) = trap_machine(abi::SYS_SPAWN, &[99, 0, 0]);
        let mut k = Kernel::new(world());
        let out = k.handle(&mut m, req, 0);
        assert_eq!(out.disposition, Disposition::Done { ret: err(EINVAL) });
    }

    #[test]
    fn futex_wait_value_mismatch_returns_immediately() {
        let (mut m, req) = trap_machine(abi::SYS_FUTEX_WAIT, &[0x2000, 1]);
        let mut k = Kernel::new(world());
        // mem[0x2000] == 0 != 1 -> no block.
        let out = k.handle(&mut m, req, 0);
        assert_eq!(out.disposition, Disposition::Done { ret: 1 });
    }

    #[test]
    fn futex_wait_then_wake() {
        // Thread 0 waits on 0x2000 (value 0 matches), thread 1 wakes it.
        let (mut m, req) = trap_machine(abi::SYS_FUTEX_WAIT, &[0x2000, 0]);
        let mut k = Kernel::new(world());
        let out = k.handle(&mut m, req, 0);
        assert_eq!(out.disposition, Disposition::Blocked);
        assert_eq!(k.stats.futex_blocks, 1);

        // Fake a waker thread: spawn one and have it trap FUTEX_WAKE.
        let entry = m.program().entry();
        let waker = m.spawn_thread(entry, &[]);
        let w = m
            .run_slice(waker, SliceLimits::budget(100), &mut NullObserver)
            .unwrap();
        // The spawned main traps FUTEX_WAIT too (same code); craft instead:
        // complete it manually and then test wake via a direct request.
        if let StopReason::Syscall(_) = w.stop {
            // Reinterpret this trap as FUTEX_WAKE for the test.
            let wake_req = SyscallRequest {
                tid: waker,
                num: abi::SYS_FUTEX_WAKE,
                args: [0x2000, 10, 0, 0, 0, 0],
            };
            let out = k.handle(&mut m, wake_req, 0);
            assert_eq!(out.disposition, Disposition::Done { ret: 1 });
            assert_eq!(out.wakes.len(), 1);
            assert_eq!(out.wakes[0].tid, Tid(0));
            assert_eq!(m.thread(Tid(0)).status, ThreadStatus::Ready);
        } else {
            panic!("waker did not trap");
        }
    }

    #[test]
    fn join_blocks_until_thread_exit_syscall() {
        let (mut m, _req) = trap_machine(abi::SYS_YIELD, &[]);
        let mut k = Kernel::new(world());
        // Complete the yield first.
        let req = m.thread(Tid(0)).pending.unwrap();
        k.handle(&mut m, req, 0);
        // Spawn a worker, then have t0 join it.
        let entry = m.program().entry();
        let worker = m.spawn_thread(entry, &[]);
        let join_req = SyscallRequest {
            tid: Tid(0),
            num: abi::SYS_JOIN,
            args: [worker.0 as u64, 0, 0, 0, 0, 0],
        };
        // Manually put t0 into Waiting as if it trapped.
        m.thread_mut(Tid(0)).pending = Some(join_req);
        m.thread_mut(Tid(0)).status = ThreadStatus::Waiting;
        let out = k.handle(&mut m, join_req, 0);
        assert_eq!(out.disposition, Disposition::Blocked);
        // Worker exits via syscall with value 99.
        let exit_req = SyscallRequest {
            tid: worker,
            num: abi::SYS_THREAD_EXIT,
            args: [99, 0, 0, 0, 0, 0],
        };
        m.thread_mut(worker).pending = Some(exit_req);
        m.thread_mut(worker).status = ThreadStatus::Waiting;
        let out = k.handle(&mut m, exit_req, 0);
        assert_eq!(out.disposition, Disposition::ThreadExited);
        assert_eq!(out.wakes.len(), 1);
        assert_eq!(out.wakes[0].ret, 99);
        assert_eq!(m.thread(Tid(0)).regs[0], 99);
    }

    #[test]
    fn sleep_wakes_via_advance_time() {
        let (mut m, req) = trap_machine(abi::SYS_SLEEP, &[1000]);
        let mut k = Kernel::new(world());
        let out = k.handle(&mut m, req, 500);
        assert_eq!(out.disposition, Disposition::Blocked);
        assert_eq!(k.next_event_time(500), Some(1500));
        assert!(k.advance_time(&mut m, 1000).is_empty());
        let wakes = k.advance_time(&mut m, 1500);
        assert_eq!(wakes.len(), 1);
        assert_eq!(wakes[0].num, abi::SYS_SLEEP);
        assert_eq!(m.thread(Tid(0)).status, ThreadStatus::Ready);
    }

    #[test]
    fn file_read_writes_guest_memory() {
        // open("in.txt") then read 5 bytes to 0x3000.
        let mut pb = ProgramBuilder::new();
        let path = pb.global_data("path", b"in.txt");
        let mut f = pb.function("main");
        f.consti(Reg(0), path as i64);
        f.consti(Reg(1), 6);
        f.consti(Reg(2), abi::O_RDONLY as i64);
        f.syscall(abi::SYS_OPEN);
        f.mov(Reg(6), Reg(0)); // save fd
        f.mov(Reg(0), Reg(6));
        f.consti(Reg(1), 0x3000);
        f.consti(Reg(2), 5);
        f.syscall(abi::SYS_READ);
        f.ret();
        f.finish();
        let mut m = Machine::new(Arc::new(pb.finish("main")), &[]);
        let mut k = Kernel::new(world());
        // Drive to completion.
        loop {
            let run = m
                .run_slice(Tid(0), SliceLimits::budget(1000), &mut NullObserver)
                .unwrap();
            match run.stop {
                StopReason::Syscall(req) => {
                    k.handle(&mut m, req, 0);
                }
                StopReason::Exited => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(m.mem().read_bytes(0x3000, 5), b"file-");
        assert_eq!(m.thread(Tid(0)).exit_value, 5);
    }

    #[test]
    fn console_output_is_journaled() {
        let mut pb = ProgramBuilder::new();
        let msg = pb.global_data("msg", b"hello");
        let mut f = pb.function("main");
        f.consti(Reg(0), msg as i64);
        f.consti(Reg(1), 5);
        f.syscall(abi::SYS_CONSOLE);
        f.ret();
        f.finish();
        let mut m = Machine::new(Arc::new(pb.finish("main")), &[]);
        let run = m
            .run_slice(Tid(0), SliceLimits::budget(100), &mut NullObserver)
            .unwrap();
        let req = match run.stop {
            StopReason::Syscall(r) => r,
            other => panic!("{other:?}"),
        };
        let mut k = Kernel::new(world());
        let out = k.handle(&mut m, req, 0);
        assert_eq!(out.effect.external.len(), 1);
        assert_eq!(out.effect.external[0].bytes, b"hello");
        let ext = k.take_external();
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].dest, ExternalDest::Console);
        assert!(k.external().is_empty());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let (mut m1, req1) = trap_machine(abi::SYS_RANDOM, &[]);
        let (mut m2, req2) = trap_machine(abi::SYS_RANDOM, &[]);
        let mut k1 = Kernel::new(world());
        let mut k2 = Kernel::new(world());
        let o1 = k1.handle(&mut m1, req1, 0);
        let o2 = k2.handle(&mut m2, req2, 0);
        assert_eq!(o1.disposition, o2.disposition);
        let mut k3 = Kernel::new(WorldConfig {
            rng_seed: 43,
            ..world()
        });
        let (mut m3, req3) = trap_machine(abi::SYS_RANDOM, &[]);
        let o3 = k3.handle(&mut m3, req3, 0);
        assert_ne!(o1.disposition, o3.disposition);
    }

    #[test]
    fn sbrk_bumps_monotonically() {
        let (mut m, req) = trap_machine(abi::SYS_SBRK, &[4096]);
        let mut k = Kernel::new(world());
        let out = k.handle(&mut m, req, 0);
        assert_eq!(
            out.disposition,
            Disposition::Done {
                ret: dp_vm::HEAP_BASE
            }
        );
        let req2 = SyscallRequest {
            tid: Tid(0),
            num: abi::SYS_SBRK,
            args: [8, 0, 0, 0, 0, 0],
        };
        m.thread_mut(Tid(0)).pending = Some(req2);
        m.thread_mut(Tid(0)).status = ThreadStatus::Waiting;
        let out = k.handle(&mut m, req2, 0);
        assert_eq!(
            out.disposition,
            Disposition::Done {
                ret: dp_vm::HEAP_BASE + 4096
            }
        );
    }

    #[test]
    fn signals_queue_and_deliver_with_handler() {
        let (mut m, req) = trap_machine(abi::SYS_SIGACTION, &[5, 0]);
        let mut k = Kernel::new(world());
        k.handle(&mut m, req, 0); // install handler func 0 for sig 5
        let kill = SyscallRequest {
            tid: Tid(0),
            num: abi::SYS_KILL,
            args: [0, 5, 0, 0, 0, 0],
        };
        m.thread_mut(Tid(0)).pending = Some(kill);
        m.thread_mut(Tid(0)).status = ThreadStatus::Waiting;
        k.handle(&mut m, kill, 0);
        assert!(k.has_pending_signals());
        let (sig, handler) = k.take_pending_signal(Tid(0)).unwrap();
        assert_eq!(sig, 5);
        assert_eq!(handler, FuncId(0));
        assert!(k.take_pending_signal(Tid(0)).is_none());
    }

    #[test]
    fn unknown_syscall_is_enosys() {
        let (mut m, req) = trap_machine(999, &[]);
        let mut k = Kernel::new(world());
        let out = k.handle(&mut m, req, 0);
        assert_eq!(out.disposition, Disposition::Done { ret: err(ENOSYS) });
    }

    #[test]
    fn kernel_clone_is_a_checkpoint() {
        let (mut m, req) = trap_machine(abi::SYS_RANDOM, &[]);
        let mut k = Kernel::new(world());
        let snap = k.clone();
        k.handle(&mut m, req, 0);
        assert_ne!(snap, k); // rng state moved
        assert_eq!(snap, Kernel::new(world()));
    }

    #[test]
    fn stats_track_logged_class() {
        let (mut m, req) = trap_machine(abi::SYS_RANDOM, &[]);
        let mut k = Kernel::new(world());
        k.handle(&mut m, req, 0);
        assert_eq!(k.stats.syscalls, 1);
        assert_eq!(k.stats.logged_syscalls, 1);
        let (mut m2, req2) = trap_machine(abi::SYS_GETTID, &[]);
        k.handle(&mut m2, req2, 0);
        assert_eq!(k.stats.syscalls, 2);
        assert_eq!(k.stats.logged_syscalls, 1);
    }
}
