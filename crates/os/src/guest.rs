//! The guest runtime library: synchronization and utility routines written
//! in VM bytecode, linked into workload programs.
//!
//! These are the Pthreads-alike primitives the paper's benchmarks rely on:
//! futex-based mutexes, a generation barrier, a blocking bounded MPMC work
//! queue, plus `memcpy`/`memset`, a guest-side PRNG, and console printing.
//! Workloads call them through [`Rt`]'s function ids.
//!
//! # Memory layouts
//!
//! * **mutex** — one word: 0 unlocked, 1 locked.
//! * **barrier** — two words: `[+0]` arrival count, `[+8]` generation.
//! * **queue** — `[+0]` mutex, `[+8]` head, `[+16]` tail, `[+24]` count,
//!   `[+32]` capacity, `[+40..]` capacity slots of one word each.

use dp_vm::builder::ProgramBuilder;
use dp_vm::{BinOp, FuncId, Reg, Width};

use crate::abi;

/// Bytes of queue header before the slots.
pub const QUEUE_HEADER: u64 = 40;

/// Total bytes needed for a queue of `cap` slots.
pub fn queue_bytes(cap: u64) -> u64 {
    QUEUE_HEADER + cap * 8
}

/// Function ids of the installed runtime routines.
#[derive(Debug, Clone, Copy)]
pub struct Rt {
    /// `fn mutex_lock(addr)` — acquire the mutex at `addr` (blocking).
    pub mutex_lock: FuncId,
    /// `fn mutex_unlock(addr)` — release and wake one waiter.
    pub mutex_unlock: FuncId,
    /// `fn barrier_wait(addr, n)` — wait until `n` threads arrive.
    pub barrier_wait: FuncId,
    /// `fn queue_init(q, cap)` — initialize a queue in place.
    pub queue_init: FuncId,
    /// `fn queue_push(q, val)` — append (blocks while full).
    pub queue_push: FuncId,
    /// `fn queue_pop(q) -> val` — remove from the front (blocks while empty).
    pub queue_pop: FuncId,
    /// `fn memcpy(dst, src, len)`.
    pub memcpy: FuncId,
    /// `fn memset(dst, byte, len)`.
    pub memset: FuncId,
    /// `fn print(ptr, len)` — write bytes to the console.
    pub print: FuncId,
    /// `fn print_u64(v)` — write a decimal number and newline.
    pub print_u64: FuncId,
    /// `fn xorshift(state_ptr) -> u64` — guest-side PRNG step.
    pub xorshift: FuncId,
    /// `fn alloc(bytes) -> ptr` — bump-allocate heap memory (`sbrk`).
    pub alloc: FuncId,
}

impl Rt {
    /// Installs the runtime library into `pb` and returns the ids.
    pub fn install(pb: &mut ProgramBuilder) -> Rt {
        let rt = Rt {
            mutex_lock: pb.declare("__rt_mutex_lock"),
            mutex_unlock: pb.declare("__rt_mutex_unlock"),
            barrier_wait: pb.declare("__rt_barrier_wait"),
            queue_init: pb.declare("__rt_queue_init"),
            queue_push: pb.declare("__rt_queue_push"),
            queue_pop: pb.declare("__rt_queue_pop"),
            memcpy: pb.declare("__rt_memcpy"),
            memset: pb.declare("__rt_memset"),
            print: pb.declare("__rt_print"),
            print_u64: pb.declare("__rt_print_u64"),
            xorshift: pb.declare("__rt_xorshift"),
            alloc: pb.declare("__rt_alloc"),
        };
        build_mutex_lock(pb);
        build_mutex_unlock(pb);
        build_barrier_wait(pb);
        build_queue_init(pb);
        build_queue_push(pb, rt);
        build_queue_pop(pb, rt);
        build_memcpy(pb);
        build_memset(pb);
        build_print(pb);
        build_print_u64(pb);
        build_xorshift(pb);
        build_alloc(pb);
        rt
    }
}

fn build_mutex_lock(pb: &mut ProgramBuilder) {
    let mut f = pb.function("__rt_mutex_lock");
    let retry = f.label();
    let done = f.label();
    f.mov(Reg(7), Reg(0)); // r7 = mutex addr
    f.bind(retry);
    f.consti(Reg(1), 0); // expected: unlocked
    f.consti(Reg(2), 1); // new: locked
    f.cas(Reg(3), Reg(7), Reg(1), Reg(2));
    f.jz(Reg(3), done); // old value 0 => acquired
                        // futex_wait(addr, 1): sleep while it remains locked.
    f.mov(Reg(0), Reg(7));
    f.consti(Reg(1), 1);
    f.syscall(abi::SYS_FUTEX_WAIT);
    f.jmp(retry);
    f.bind(done);
    f.ret();
    f.finish();
}

fn build_mutex_unlock(pb: &mut ProgramBuilder) {
    let mut f = pb.function("__rt_mutex_unlock");
    f.mov(Reg(7), Reg(0));
    f.consti(Reg(1), 0);
    f.store(Reg(1), Reg(7), 0, Width::W8);
    f.mov(Reg(0), Reg(7));
    f.consti(Reg(1), 1);
    f.syscall(abi::SYS_FUTEX_WAKE);
    f.ret();
    f.finish();
}

fn build_barrier_wait(pb: &mut ProgramBuilder) {
    let mut f = pb.function("__rt_barrier_wait");
    let wait = f.label();
    let done = f.label();
    f.mov(Reg(7), Reg(0)); // barrier addr
    f.mov(Reg(6), Reg(1)); // n
    f.load(Reg(5), Reg(7), 8, Width::W8); // my generation
    f.fetch_add(Reg(4), Reg(7), 1i64); // old arrival count
    f.add(Reg(4), Reg(4), 1i64);
    f.bin(BinOp::Eq, Reg(3), Reg(4), Reg(6));
    f.jz(Reg(3), wait);
    // Last arriver: reset count, bump generation, wake everyone.
    // (Safe to reset before bumping: no thread can re-arrive until the
    // generation changes.)
    f.consti(Reg(2), 0);
    f.store(Reg(2), Reg(7), 0, Width::W8);
    f.add(Reg(5), Reg(5), 1i64);
    f.store(Reg(5), Reg(7), 8, Width::W8);
    f.add(Reg(0), Reg(7), 8i64);
    f.consti(Reg(1), i64::MAX);
    f.syscall(abi::SYS_FUTEX_WAKE);
    f.ret();
    f.bind(wait);
    f.load(Reg(3), Reg(7), 8, Width::W8);
    f.bin(BinOp::Ne, Reg(2), Reg(3), Reg(5));
    f.jnz(Reg(2), done);
    f.add(Reg(0), Reg(7), 8i64);
    f.mov(Reg(1), Reg(5)); // wait while generation == mine
    f.syscall(abi::SYS_FUTEX_WAIT);
    f.jmp(wait);
    f.bind(done);
    f.ret();
    f.finish();
}

fn build_queue_init(pb: &mut ProgramBuilder) {
    let mut f = pb.function("__rt_queue_init");
    f.consti(Reg(2), 0);
    f.store(Reg(2), Reg(0), 0, Width::W8); // lock
    f.store(Reg(2), Reg(0), 8, Width::W8); // head
    f.store(Reg(2), Reg(0), 16, Width::W8); // tail
    f.store(Reg(2), Reg(0), 24, Width::W8); // count
    f.store(Reg(1), Reg(0), 32, Width::W8); // capacity
    f.ret();
    f.finish();
}

fn build_queue_push(pb: &mut ProgramBuilder, rt: Rt) {
    let mut f = pb.function("__rt_queue_push");
    let full = f.label();
    let have_space = f.label();
    f.mov(Reg(7), Reg(0)); // q
    f.mov(Reg(6), Reg(1)); // value
    f.mov(Reg(0), Reg(7));
    f.call(rt.mutex_lock);
    f.bind(full);
    f.load(Reg(5), Reg(7), 24, Width::W8); // count
    f.load(Reg(4), Reg(7), 32, Width::W8); // cap
    f.bin(BinOp::Ltu, Reg(3), Reg(5), Reg(4));
    f.jnz(Reg(3), have_space);
    f.mov(Reg(0), Reg(7));
    f.call(rt.mutex_unlock);
    f.add(Reg(0), Reg(7), 24i64);
    f.mov(Reg(1), Reg(4)); // wait while count == cap
    f.syscall(abi::SYS_FUTEX_WAIT);
    f.mov(Reg(0), Reg(7));
    f.call(rt.mutex_lock);
    f.jmp(full);
    f.bind(have_space);
    f.load(Reg(3), Reg(7), 16, Width::W8); // tail
    f.bin(BinOp::Remu, Reg(2), Reg(3), Reg(4));
    f.mul(Reg(2), Reg(2), 8i64);
    f.add(Reg(2), Reg(2), Reg(7));
    f.store(Reg(6), Reg(2), QUEUE_HEADER as i64, Width::W8);
    f.add(Reg(3), Reg(3), 1i64);
    f.store(Reg(3), Reg(7), 16, Width::W8);
    f.add(Reg(5), Reg(5), 1i64);
    f.store(Reg(5), Reg(7), 24, Width::W8);
    f.mov(Reg(0), Reg(7));
    f.call(rt.mutex_unlock);
    f.add(Reg(0), Reg(7), 24i64);
    f.consti(Reg(1), i64::MAX);
    f.syscall(abi::SYS_FUTEX_WAKE);
    f.ret();
    f.finish();
}

fn build_queue_pop(pb: &mut ProgramBuilder, rt: Rt) {
    let mut f = pb.function("__rt_queue_pop");
    let empty = f.label();
    let have_item = f.label();
    f.mov(Reg(7), Reg(0)); // q
    f.mov(Reg(0), Reg(7));
    f.call(rt.mutex_lock);
    f.bind(empty);
    f.load(Reg(5), Reg(7), 24, Width::W8); // count
    f.jnz(Reg(5), have_item);
    f.mov(Reg(0), Reg(7));
    f.call(rt.mutex_unlock);
    f.add(Reg(0), Reg(7), 24i64);
    f.consti(Reg(1), 0); // wait while count == 0
    f.syscall(abi::SYS_FUTEX_WAIT);
    f.mov(Reg(0), Reg(7));
    f.call(rt.mutex_lock);
    f.jmp(empty);
    f.bind(have_item);
    f.load(Reg(4), Reg(7), 32, Width::W8); // cap
    f.load(Reg(3), Reg(7), 8, Width::W8); // head
    f.bin(BinOp::Remu, Reg(2), Reg(3), Reg(4));
    f.mul(Reg(2), Reg(2), 8i64);
    f.add(Reg(2), Reg(2), Reg(7));
    f.load(Reg(6), Reg(2), QUEUE_HEADER as i64, Width::W8); // value
    f.add(Reg(3), Reg(3), 1i64);
    f.store(Reg(3), Reg(7), 8, Width::W8);
    f.sub(Reg(5), Reg(5), 1i64);
    f.store(Reg(5), Reg(7), 24, Width::W8);
    f.mov(Reg(0), Reg(7));
    f.call(rt.mutex_unlock);
    f.add(Reg(0), Reg(7), 24i64);
    f.consti(Reg(1), i64::MAX);
    f.syscall(abi::SYS_FUTEX_WAKE);
    f.mov(Reg(0), Reg(6));
    f.ret();
    f.finish();
}

fn build_memcpy(pb: &mut ProgramBuilder) {
    let mut f = pb.function("__rt_memcpy");
    let words = f.label();
    let bytes_loop = f.label();
    let bytes_check = f.label();
    let done = f.label();
    // r0 dst, r1 src, r2 len
    f.bind(words);
    f.bin(BinOp::Ltu, Reg(3), Reg(2), 8i64);
    f.jnz(Reg(3), bytes_check);
    f.load(Reg(4), Reg(1), 0, Width::W8);
    f.store(Reg(4), Reg(0), 0, Width::W8);
    f.add(Reg(0), Reg(0), 8i64);
    f.add(Reg(1), Reg(1), 8i64);
    f.sub(Reg(2), Reg(2), 8i64);
    f.jmp(words);
    f.bind(bytes_loop);
    f.load(Reg(4), Reg(1), 0, Width::W1);
    f.store(Reg(4), Reg(0), 0, Width::W1);
    f.add(Reg(0), Reg(0), 1i64);
    f.add(Reg(1), Reg(1), 1i64);
    f.sub(Reg(2), Reg(2), 1i64);
    f.bind(bytes_check);
    f.jnz(Reg(2), bytes_loop);
    f.jmp(done);
    f.bind(done);
    f.ret();
    f.finish();
}

fn build_memset(pb: &mut ProgramBuilder) {
    let mut f = pb.function("__rt_memset");
    let top = f.label();
    let done = f.label();
    // r0 dst, r1 byte, r2 len
    f.bind(top);
    f.jz(Reg(2), done);
    f.store(Reg(1), Reg(0), 0, Width::W1);
    f.add(Reg(0), Reg(0), 1i64);
    f.sub(Reg(2), Reg(2), 1i64);
    f.jmp(top);
    f.bind(done);
    f.ret();
    f.finish();
}

fn build_print(pb: &mut ProgramBuilder) {
    let mut f = pb.function("__rt_print");
    f.syscall(abi::SYS_CONSOLE);
    f.ret();
    f.finish();
}

fn build_print_u64(pb: &mut ProgramBuilder) {
    let mut f = pb.function("__rt_print_u64");
    let digits = f.label();
    // r0 = value. Build the string backward below the stack pointer.
    f.mov(Reg(7), Reg(0));
    f.mov(Reg(5), Reg(31)); // cursor
    f.sub(Reg(5), Reg(5), 1i64);
    f.consti(Reg(4), b'\n' as i64);
    f.store(Reg(4), Reg(5), 0, Width::W1);
    f.bind(digits);
    f.bin(BinOp::Remu, Reg(4), Reg(7), 10i64);
    f.add(Reg(4), Reg(4), b'0' as i64);
    f.sub(Reg(5), Reg(5), 1i64);
    f.store(Reg(4), Reg(5), 0, Width::W1);
    f.bin(BinOp::Divu, Reg(7), Reg(7), 10i64);
    f.jnz(Reg(7), digits);
    f.mov(Reg(0), Reg(5));
    f.mov(Reg(1), Reg(31));
    f.sub(Reg(1), Reg(1), Reg(5));
    f.syscall(abi::SYS_CONSOLE);
    f.ret();
    f.finish();
}

fn build_xorshift(pb: &mut ProgramBuilder) {
    let mut f = pb.function("__rt_xorshift");
    // r0 = state pointer; returns next value in r0.
    f.mov(Reg(7), Reg(0));
    f.load(Reg(1), Reg(7), 0, Width::W8);
    f.bin(BinOp::Shl, Reg(2), Reg(1), 13i64);
    f.bin(BinOp::Xor, Reg(1), Reg(1), Reg(2));
    f.bin(BinOp::Shr, Reg(2), Reg(1), 7i64);
    f.bin(BinOp::Xor, Reg(1), Reg(1), Reg(2));
    f.bin(BinOp::Shl, Reg(2), Reg(1), 17i64);
    f.bin(BinOp::Xor, Reg(1), Reg(1), Reg(2));
    f.store(Reg(1), Reg(7), 0, Width::W8);
    f.mov(Reg(0), Reg(1));
    f.ret();
    f.finish();
}

fn build_alloc(pb: &mut ProgramBuilder) {
    let mut f = pb.function("__rt_alloc");
    // r0 = bytes; round up to 8 and sbrk.
    f.add(Reg(0), Reg(0), 7i64);
    f.consti(Reg(1), !7i64);
    f.bin(BinOp::And, Reg(0), Reg(0), Reg(1));
    f.syscall(abi::SYS_SBRK);
    f.ret();
    f.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::DirectExecutor;
    use crate::kernel::{Kernel, WorldConfig};
    use dp_vm::Machine;
    use std::sync::Arc;

    fn run(pb: ProgramBuilder) -> (Machine, Kernel) {
        let program = Arc::new(pb.finish("main"));
        let mut machine = Machine::new(program, &[]);
        let mut kernel = Kernel::new(WorldConfig::default());
        DirectExecutor::default()
            .run(&mut machine, &mut kernel, 50_000_000)
            .expect("guest run failed");
        (machine, kernel)
    }

    #[test]
    fn mutex_protects_a_counter() {
        // 4 threads increment a shared counter 1000 times under a mutex.
        let mut pb = ProgramBuilder::new();
        let rt = Rt::install(&mut pb);
        let lock = pb.global("lock", 8);
        let counter = pb.global("counter", 8);

        let mut w = pb.function("worker");
        let top = w.label();
        let done = w.label();
        w.consti(Reg(10), 0);
        w.bind(top);
        w.bin(BinOp::Ltu, Reg(11), Reg(10), 1000i64);
        w.jz(Reg(11), done);
        w.consti(Reg(0), lock as i64);
        w.call(rt.mutex_lock);
        // Deliberately non-atomic increment: load, add, store.
        w.consti(Reg(12), counter as i64);
        w.load(Reg(13), Reg(12), 0, Width::W8);
        w.add(Reg(13), Reg(13), 1i64);
        w.store(Reg(13), Reg(12), 0, Width::W8);
        w.consti(Reg(0), lock as i64);
        w.call(rt.mutex_unlock);
        w.add(Reg(10), Reg(10), 1i64);
        w.jmp(top);
        w.bind(done);
        w.consti(Reg(0), 0);
        w.syscall(abi::SYS_THREAD_EXIT);
        w.finish();

        let worker_id = pb.declare("worker");
        let mut f = pb.function("main");
        // Spawn 4 workers then join them.
        for _ in 0..4 {
            f.consti(Reg(0), worker_id.0 as i64);
            f.consti(Reg(1), 0);
            f.consti(Reg(2), 0);
            f.syscall(abi::SYS_SPAWN);
        }
        for t in 1..=4 {
            f.consti(Reg(0), t);
            f.syscall(abi::SYS_JOIN);
        }
        f.consti(Reg(9), counter as i64);
        f.load(Reg(0), Reg(9), 0, Width::W8);
        f.syscall(abi::SYS_EXIT);
        f.finish();

        let (machine, _) = run(pb);
        assert_eq!(machine.halted(), Some(4000));
    }

    #[test]
    fn barrier_synchronizes_phases() {
        // 3 threads run 5 phases; each phase each thread adds its phase
        // number to its slot only after all have finished the previous
        // phase; a checker thread is not needed because any barrier failure
        // shows up as a wrong final sum under phase-dependent writes.
        let mut pb = ProgramBuilder::new();
        let rt = Rt::install(&mut pb);
        let barrier = pb.global("barrier", 16);
        let slots = pb.global("slots", 3 * 8);
        let phase_sum = pb.global("phase_sum", 8);

        let mut w = pb.function("worker");
        // r0 = my index
        let top = w.label();
        let done = w.label();
        let skip = w.label();
        w.mov(Reg(10), Reg(0)); // idx
        w.consti(Reg(11), 0); // phase
        w.bind(top);
        w.bin(BinOp::Ltu, Reg(12), Reg(11), 5i64);
        w.jz(Reg(12), done);
        // slots[idx] += phase; then barrier; then (idx 0 only) fold the sum.
        w.consti(Reg(13), slots as i64);
        w.mul(Reg(14), Reg(10), 8i64);
        w.add(Reg(13), Reg(13), Reg(14));
        w.load(Reg(15), Reg(13), 0, Width::W8);
        w.add(Reg(15), Reg(15), Reg(11));
        w.store(Reg(15), Reg(13), 0, Width::W8);
        w.consti(Reg(0), barrier as i64);
        w.consti(Reg(1), 3);
        w.call(rt.barrier_wait);
        // Phase complete for everyone; worker 0 accumulates a checksum that
        // depends on all slots being current.
        w.jnz(Reg(10), skip);
        w.consti(Reg(16), slots as i64);
        w.load(Reg(17), Reg(16), 0, Width::W8);
        w.load(Reg(18), Reg(16), 8, Width::W8);
        w.load(Reg(19), Reg(16), 16, Width::W8);
        w.add(Reg(17), Reg(17), Reg(18));
        w.add(Reg(17), Reg(17), Reg(19));
        w.consti(Reg(20), phase_sum as i64);
        w.load(Reg(21), Reg(20), 0, Width::W8);
        w.add(Reg(21), Reg(21), Reg(17));
        w.store(Reg(21), Reg(20), 0, Width::W8);
        w.bind(skip);
        w.add(Reg(11), Reg(11), 1i64);
        // Second barrier so nobody races ahead into the next phase while
        // worker 0 reads slots.
        w.consti(Reg(0), barrier as i64);
        w.consti(Reg(1), 3);
        w.call(rt.barrier_wait);
        w.jmp(top);
        w.bind(done);
        w.consti(Reg(0), 0);
        w.syscall(abi::SYS_THREAD_EXIT);
        w.finish();

        let worker_id = pb.declare("worker");
        let mut f = pb.function("main");
        for i in 0..3 {
            f.consti(Reg(0), worker_id.0 as i64);
            f.consti(Reg(1), i);
            f.consti(Reg(2), 0);
            f.syscall(abi::SYS_SPAWN);
        }
        for t in 1..=3 {
            f.consti(Reg(0), t);
            f.syscall(abi::SYS_JOIN);
        }
        f.consti(Reg(9), phase_sum as i64);
        f.load(Reg(0), Reg(9), 0, Width::W8);
        f.syscall(abi::SYS_EXIT);
        f.finish();

        let (machine, _) = run(pb);
        // Each phase p, each slot holds sum(0..=p); worker 0 adds all 3
        // slots each phase: sum over p of 3 * (p*(p+1)/2)... slots grow by
        // p at phase p, so at phase p slot value = 0+1+..+p = p(p+1)/2.
        // checksum = sum_p 3*p(p+1)/2 for p in 0..5 = 3*(0+1+3+6+10) = 60.
        assert_eq!(machine.halted(), Some(60));
    }

    #[test]
    fn queue_delivers_every_item_exactly_once() {
        // 2 producers push 50 items each; 2 consumers pop and sum; total
        // must equal the sum of all pushed values.
        let mut pb = ProgramBuilder::new();
        let rt = Rt::install(&mut pb);
        let q = pb.global("q", queue_bytes(8));
        let total = pb.global("total", 8);

        let mut prod = pb.function("producer");
        // r0 = base value
        let top = prod.label();
        let done = prod.label();
        prod.mov(Reg(10), Reg(0));
        prod.consti(Reg(11), 0);
        prod.bind(top);
        prod.bin(BinOp::Ltu, Reg(12), Reg(11), 50i64);
        prod.jz(Reg(12), done);
        prod.consti(Reg(0), q as i64);
        prod.add(Reg(1), Reg(10), Reg(11));
        prod.call(rt.queue_push);
        prod.add(Reg(11), Reg(11), 1i64);
        prod.jmp(top);
        prod.bind(done);
        prod.consti(Reg(0), 0);
        prod.syscall(abi::SYS_THREAD_EXIT);
        prod.finish();

        let mut cons = pb.function("consumer");
        let top = cons.label();
        let done = cons.label();
        cons.consti(Reg(10), 0); // popped count
        cons.bind(top);
        cons.bin(BinOp::Ltu, Reg(11), Reg(10), 50i64);
        cons.jz(Reg(11), done);
        cons.consti(Reg(0), q as i64);
        cons.call(rt.queue_pop);
        cons.consti(Reg(12), total as i64);
        cons.fetch_add(Reg(13), Reg(12), dp_vm::Src::Reg(Reg(0)));
        cons.add(Reg(10), Reg(10), 1i64);
        cons.jmp(top);
        cons.bind(done);
        cons.consti(Reg(0), 0);
        cons.syscall(abi::SYS_THREAD_EXIT);
        cons.finish();

        let producer_id = pb.declare("producer");
        let consumer_id = pb.declare("consumer");
        let mut f = pb.function("main");
        f.consti(Reg(0), q as i64);
        f.consti(Reg(1), 8);
        f.call(rt.queue_init);
        for base in [1000i64, 2000] {
            f.consti(Reg(0), producer_id.0 as i64);
            f.consti(Reg(1), base);
            f.consti(Reg(2), 0);
            f.syscall(abi::SYS_SPAWN);
        }
        for _ in 0..2 {
            f.consti(Reg(0), consumer_id.0 as i64);
            f.consti(Reg(1), 0);
            f.consti(Reg(2), 0);
            f.syscall(abi::SYS_SPAWN);
        }
        for t in 1..=4 {
            f.consti(Reg(0), t);
            f.syscall(abi::SYS_JOIN);
        }
        f.consti(Reg(9), total as i64);
        f.load(Reg(0), Reg(9), 0, Width::W8);
        f.syscall(abi::SYS_EXIT);
        f.finish();

        let (machine, _) = run(pb);
        let expect: u64 =
            (0..50).map(|i| 1000 + i).sum::<u64>() + (0..50).map(|i| 2000 + i).sum::<u64>();
        assert_eq!(machine.halted(), Some(expect));
    }

    #[test]
    fn print_u64_formats_decimals() {
        let mut pb = ProgramBuilder::new();
        let rt = Rt::install(&mut pb);
        let mut f = pb.function("main");
        f.consti(Reg(0), 0);
        f.call(rt.print_u64);
        f.consti(Reg(0), 90210);
        f.call(rt.print_u64);
        f.consti(Reg(0), 0);
        f.syscall(abi::SYS_EXIT);
        f.finish();
        let (_, mut kernel) = run(pb);
        let out: Vec<u8> = kernel
            .take_external()
            .into_iter()
            .flat_map(|c| c.bytes)
            .collect();
        assert_eq!(out, b"0\n90210\n");
    }

    #[test]
    fn memcpy_and_memset_move_bytes() {
        let mut pb = ProgramBuilder::new();
        let rt = Rt::install(&mut pb);
        let src = pb.global_data("src", b"0123456789abcdef_tail");
        let dst = pb.global("dst", 32);
        let mut f = pb.function("main");
        f.consti(Reg(0), dst as i64);
        f.consti(Reg(1), src as i64);
        f.consti(Reg(2), 21);
        f.call(rt.memcpy);
        f.consti(Reg(0), dst as i64);
        f.consti(Reg(1), b'x' as i64);
        f.consti(Reg(2), 4);
        f.call(rt.memset);
        f.consti(Reg(0), 0);
        f.syscall(abi::SYS_EXIT);
        f.finish();
        let (machine, _) = run(pb);
        assert_eq!(machine.mem().read_bytes(dst, 21), b"xxxx456789abcdef_tail");
    }

    #[test]
    fn xorshift_matches_host_reference() {
        let mut pb = ProgramBuilder::new();
        let rt = Rt::install(&mut pb);
        let state = pb.global("state", 8);
        let mut f = pb.function("main");
        f.consti(Reg(9), state as i64);
        f.consti(Reg(1), 88172645463325252u64 as i64);
        f.store(Reg(1), Reg(9), 0, Width::W8);
        f.consti(Reg(0), state as i64);
        f.call(rt.xorshift);
        f.syscall(abi::SYS_EXIT); // exit code = first random
        f.finish();
        let (machine, _) = run(pb);
        let mut s: u64 = 88172645463325252;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        assert_eq!(machine.halted(), Some(s));
    }

    #[test]
    fn alloc_returns_distinct_aligned_blocks() {
        let mut pb = ProgramBuilder::new();
        let rt = Rt::install(&mut pb);
        let mut f = pb.function("main");
        f.consti(Reg(0), 13);
        f.call(rt.alloc);
        f.mov(Reg(9), Reg(0));
        f.consti(Reg(0), 5);
        f.call(rt.alloc);
        f.sub(Reg(0), Reg(0), Reg(9)); // distance between blocks
        f.syscall(abi::SYS_EXIT);
        f.finish();
        let (machine, _) = run(pb);
        assert_eq!(machine.halted(), Some(16)); // 13 rounded to 16
    }
}
