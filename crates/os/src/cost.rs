//! The simulated-time cost model.
//!
//! The paper reports *relative* overheads (recorded runtime / native
//! runtime); reproducing their shape requires only that the relative costs of
//! instructions, syscalls, context switches, page copies and log writes be
//! plausible. All costs are in abstract **cycles**; one ordinary instruction
//! costs one cycle. The defaults are loosely calibrated to a ~GHz machine
//! where a syscall is a few hundred cycles and copying a 4 KiB page is a few
//! hundred more.

/// Cycle costs charged by drivers and the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of any syscall (trap + dispatch + return).
    pub syscall_base: u64,
    /// Additional cost per 8 bytes moved by an I/O syscall.
    pub io_per_8_bytes: u64,
    /// Cost of a context switch (charged per schedule-log slice in the
    /// epoch-parallel run and per quantum switch in the thread-parallel run).
    pub context_switch: u64,
    /// Copy-on-write charge per page dirtied after a checkpoint.
    pub page_copy: u64,
    /// Cost per resident page of computing a state digest at an epoch end.
    pub hash_page: u64,
    /// Cost per 8 bytes appended to a log (sequential buffered writes are
    /// cheap; compression/flush happens off the critical path, as in the
    /// paper's logging daemon).
    pub log_byte: u64,
    /// Fixed cost of taking a checkpoint (page-table copy, bookkeeping).
    pub checkpoint_base: u64,
    /// Page-protection fault cost (CREW baseline ownership transitions).
    pub crew_fault: u64,
    /// Per-access instrumentation cost multiplier numerator for the
    /// value-logging baseline (cost = accesses * num / den extra cycles).
    pub value_log_instr_num: u64,
    /// Denominator for the value-logging instrumentation cost.
    pub value_log_instr_den: u64,
}

impl CostModel {
    /// Cost of a syscall moving `bytes` of data.
    #[inline]
    pub fn syscall(&self, bytes: u64) -> u64 {
        self.syscall_base + (bytes / 8) * self.io_per_8_bytes
    }

    /// Cost of taking a checkpoint given the pages dirtied since the last
    /// one (the COW copies that will be forced).
    #[inline]
    pub fn checkpoint(&self, dirty_pages: u64) -> u64 {
        self.checkpoint_base + dirty_pages * self.page_copy
    }

    /// Cost of hashing a state with `pages` resident pages.
    #[inline]
    pub fn state_hash(&self, pages: u64) -> u64 {
        pages * self.hash_page
    }

    /// Cost of writing `bytes` of log.
    #[inline]
    pub fn log_write(&self, bytes: u64) -> u64 {
        bytes * self.log_byte / 8
    }
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated so per-epoch recording work is a fraction of a percent
        // of an epoch, matching the paper's epoch-to-checkpoint cost ratio
        // (their epochs are ~1s, checkpoints ~1ms). See DESIGN.md.
        CostModel {
            syscall_base: 150,
            io_per_8_bytes: 1,
            context_switch: 60,
            page_copy: 25,
            hash_page: 5,
            log_byte: 1,
            checkpoint_base: 500,
            crew_fault: 800,
            value_log_instr_num: 2,
            value_log_instr_den: 1,
        }
    }
}

dp_support::impl_wire_struct!(CostModel {
    syscall_base,
    io_per_8_bytes,
    context_switch,
    page_copy,
    hash_page,
    log_byte,
    checkpoint_base,
    crew_fault,
    value_log_instr_num,
    value_log_instr_den,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_cost_scales_with_bytes() {
        let c = CostModel::default();
        assert_eq!(c.syscall(0), c.syscall_base);
        assert!(c.syscall(4096) > c.syscall(8));
    }

    #[test]
    fn checkpoint_cost_scales_with_dirty_pages() {
        let c = CostModel::default();
        assert_eq!(c.checkpoint(0), c.checkpoint_base);
        assert_eq!(c.checkpoint(10) - c.checkpoint(0), 10 * c.page_copy);
    }

    #[test]
    fn defaults_are_plausible_ratios() {
        let c = CostModel::default();
        // A syscall is hundreds of instructions, a page copy likewise, and
        // log bytes are cheap; the overhead shapes depend on these ordering
        // relations rather than exact values.
        assert!(c.syscall_base >= 100);
        assert!(c.page_copy >= 10);
        assert!(c.log_byte <= 10);
        assert!(c.crew_fault > c.syscall_base);
    }
}
