//! An in-memory filesystem with copy-on-write file contents, plus the
//! host-side durable-sink fault machinery.
//!
//! The filesystem is *inside* the recorded world: checkpoints snapshot it
//! (cloning is cheap — contents are `Arc`-shared) and rollback restores it,
//! which is the simulated equivalent of the paper running the recorded
//! process under Speculator so that speculative file writes can be undone.
//! Filesystem operations are therefore in the *re-executed* syscall class:
//! given identical guest states they produce identical results.
//!
//! [`SinkFaults`] / [`FaultedSink`] live on the other side of the recording
//! boundary: they model failures of the *host* filesystem the recorder
//! persists its journal to (torn writes from a crash, `ENOSPC`, failed
//! flushes, short writes). They never perturb the guest — only the
//! durability of what the recorder managed to write before dying.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Arc;

use crate::abi::{self, EBADF, EINVAL, ENOENT};
use dp_support::rng::{mix, roll};

/// Open-file access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Read,
    Write,
    ReadWrite,
    Append,
}

/// An open file description.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FileDesc {
    path: String,
    offset: u64,
    mode: Mode,
}

/// The in-memory filesystem. `Clone` is a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFs {
    files: BTreeMap<String, Arc<Vec<u8>>>,
    fds: BTreeMap<u32, FileDesc>,
    next_fd: u32,
    /// Total bytes moved through read/write (workload characterization).
    pub io_bytes: u64,
}

/// First file descriptor handed out (0–2 are reserved by convention).
pub const FIRST_FILE_FD: u32 = 3;

impl SimFs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        SimFs {
            files: BTreeMap::new(),
            fds: BTreeMap::new(),
            next_fd: FIRST_FILE_FD,
            io_bytes: 0,
        }
    }

    /// Installs a file before execution starts (world setup).
    pub fn preload(&mut self, path: &str, contents: Vec<u8>) {
        self.files.insert(path.to_string(), Arc::new(contents));
    }

    /// Reads a whole file (host-side verification helper).
    pub fn contents(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|a| a.as_slice())
    }

    /// Lists all paths (host-side verification helper).
    pub fn paths(&self) -> Vec<&str> {
        self.files.keys().map(|s| s.as_str()).collect()
    }

    /// Opens `path` with an [`crate::abi`] flag value.
    ///
    /// # Errors
    ///
    /// `ENOENT` for reads of missing files, `EINVAL` for unknown flags.
    pub fn open(&mut self, path: &str, flags: u64) -> Result<u32, i64> {
        let mode = match flags {
            abi::O_RDONLY => Mode::Read,
            abi::O_WRONLY => Mode::Write,
            abi::O_RDWR => Mode::ReadWrite,
            abi::O_APPEND => Mode::Append,
            _ => return Err(EINVAL),
        };
        match mode {
            Mode::Read => {
                if !self.files.contains_key(path) {
                    return Err(ENOENT);
                }
            }
            Mode::Write => {
                self.files.insert(path.to_string(), Arc::new(Vec::new()));
            }
            Mode::ReadWrite | Mode::Append => {
                self.files
                    .entry(path.to_string())
                    .or_insert_with(|| Arc::new(Vec::new()));
            }
        }
        let offset = match mode {
            Mode::Append => self.files[path].len() as u64,
            _ => 0,
        };
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(
            fd,
            FileDesc {
                path: path.to_string(),
                offset,
                mode,
            },
        );
        Ok(fd)
    }

    /// Closes an fd.
    ///
    /// # Errors
    ///
    /// `EBADF` if not open.
    pub fn close(&mut self, fd: u32) -> Result<(), i64> {
        self.fds.remove(&fd).map(|_| ()).ok_or(EBADF)
    }

    /// Reads up to `len` bytes at the fd's offset, advancing it.
    ///
    /// # Errors
    ///
    /// `EBADF` for bad fds or write-only fds.
    pub fn read(&mut self, fd: u32, len: u64) -> Result<Vec<u8>, i64> {
        let desc = self.fds.get_mut(&fd).ok_or(EBADF)?;
        if desc.mode == Mode::Write || desc.mode == Mode::Append {
            return Err(EBADF);
        }
        let file = self.files.get(&desc.path).ok_or(ENOENT)?;
        let start = (desc.offset as usize).min(file.len());
        let end = (start + len as usize).min(file.len());
        let data = file[start..end].to_vec();
        desc.offset = end as u64;
        self.io_bytes += data.len() as u64;
        Ok(data)
    }

    /// Writes bytes at the fd's offset, advancing it and growing the file.
    ///
    /// # Errors
    ///
    /// `EBADF` for bad fds or read-only fds.
    pub fn write(&mut self, fd: u32, data: &[u8]) -> Result<u64, i64> {
        let desc = self.fds.get_mut(&fd).ok_or(EBADF)?;
        if desc.mode == Mode::Read {
            return Err(EBADF);
        }
        let file = self.files.get_mut(&desc.path).ok_or(ENOENT)?;
        let contents = Arc::make_mut(file);
        let start = desc.offset as usize;
        if contents.len() < start + data.len() {
            contents.resize(start + data.len(), 0);
        }
        contents[start..start + data.len()].copy_from_slice(data);
        desc.offset += data.len() as u64;
        self.io_bytes += data.len() as u64;
        Ok(data.len() as u64)
    }

    /// Repositions an fd's offset.
    ///
    /// # Errors
    ///
    /// `EBADF` / `EINVAL` for bad fds / whence, or seeking before zero.
    pub fn lseek(&mut self, fd: u32, offset: i64, whence: u64) -> Result<u64, i64> {
        let size = {
            let desc = self.fds.get(&fd).ok_or(EBADF)?;
            self.files.get(&desc.path).ok_or(ENOENT)?.len() as i64
        };
        let desc = self.fds.get_mut(&fd).ok_or(EBADF)?;
        let base = match whence {
            abi::SEEK_SET => 0,
            abi::SEEK_CUR => desc.offset as i64,
            abi::SEEK_END => size,
            _ => return Err(EINVAL),
        };
        let target = base + offset;
        if target < 0 {
            return Err(EINVAL);
        }
        desc.offset = target as u64;
        Ok(desc.offset)
    }

    /// Size of the open file behind `fd`.
    ///
    /// # Errors
    ///
    /// `EBADF` for bad fds.
    pub fn fsize(&self, fd: u32) -> Result<u64, i64> {
        let desc = self.fds.get(&fd).ok_or(EBADF)?;
        Ok(self.files.get(&desc.path).ok_or(ENOENT)?.len() as u64)
    }

    /// Removes a file by path (open fds keep working on nothing).
    ///
    /// # Errors
    ///
    /// `ENOENT` if missing.
    pub fn unlink(&mut self, path: &str) -> Result<(), i64> {
        self.files.remove(path).map(|_| ()).ok_or(ENOENT)
    }
}

impl Default for SimFs {
    fn default() -> Self {
        Self::new()
    }
}

dp_support::impl_wire_enum!(Mode { 0 => Read, 1 => Write, 2 => ReadWrite, 3 => Append });
dp_support::impl_wire_struct!(FileDesc { path, offset, mode });
dp_support::impl_wire_struct!(SimFs {
    files,
    fds,
    next_fd,
    io_bytes
});

const SALT_SHORT_WRITE: u64 = 0x5045_6b57;

/// Deterministic fault plan for a host-side durable sink (the recorder's
/// journal file). `Default` injects nothing.
///
/// Two of the classes are *fatal* (they model a crash of the recording
/// machine or an exhausted disk, after which nothing more becomes durable)
/// and two are *survivable* (a robust writer retries or reroutes them):
///
/// * `torn_at` — fatal: the sink dies mid-write at an exact byte offset;
///   bytes up to the offset are durable, everything after is lost;
/// * `enospc_at` — fatal: the device is full after the offset;
/// * `fail_flush_at` — fatal: the n-th `flush` call fails (data already
///   accepted stays durable, the writer learns its commit did not land);
/// * `short_write_p` — survivable: a `write` call accepts only a prefix,
///   which a correct writer (using `write_all`) simply retries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SinkFaults {
    /// Seed decorrelating plans with equal probabilities.
    pub seed: u64,
    /// Crash mid-write once this many bytes are durable (`None` = never).
    pub torn_at: Option<u64>,
    /// Device full once this many bytes are durable (`None` = never).
    pub enospc_at: Option<u64>,
    /// The n-th flush (1-based) fails and kills the sink (`None` = never).
    pub fail_flush_at: Option<u64>,
    /// Probability a `write` call transfers only a prefix of the buffer.
    pub short_write_p: f64,
}

impl SinkFaults {
    /// No injected faults.
    pub fn none() -> Self {
        SinkFaults::default()
    }

    /// True when any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.torn_at.is_some()
            || self.enospc_at.is_some()
            || self.fail_flush_at.is_some()
            || self.short_write_p > 0.0
    }

    /// Byte offset at which the sink dies, if any (torn write or `ENOSPC`,
    /// whichever comes first).
    fn death_offset(&self) -> Option<u64> {
        match (self.torn_at, self.enospc_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Should write call number `call` (0-based) be a short write, and if
    /// so, how many of `len` bytes does it accept? Always at least one byte
    /// so a retrying writer makes progress.
    fn short_write(&self, call: u64, len: usize) -> Option<usize> {
        if len <= 1 || self.short_write_p <= 0.0 {
            return None;
        }
        let h = mix(&[self.seed, call, SALT_SHORT_WRITE]);
        if roll(h, self.short_write_p) {
            Some(1 + (mix(&[h, len as u64]) % len as u64) as usize)
        } else {
            None
        }
    }
}

dp_support::impl_wire_struct!(SinkFaults {
    seed,
    torn_at,
    enospc_at,
    fail_flush_at,
    short_write_p
});

/// A [`Write`] adapter that injects a [`SinkFaults`] plan in front of an
/// inner sink. Once a fatal fault fires the sink is dead: every later
/// write or flush fails, exactly like a crashed recording machine. The
/// bytes the inner sink received before the fault are what a salvage scan
/// gets to work with.
#[derive(Debug)]
pub struct FaultedSink<W: Write> {
    inner: W,
    plan: SinkFaults,
    durable: u64,
    write_calls: u64,
    flush_calls: u64,
    dead: Option<&'static str>,
}

impl<W: Write> FaultedSink<W> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: W, plan: SinkFaults) -> Self {
        FaultedSink {
            inner,
            plan,
            durable: 0,
            write_calls: 0,
            flush_calls: 0,
            dead: None,
        }
    }

    /// Bytes the inner sink has durably accepted.
    pub fn durable_bytes(&self) -> u64 {
        self.durable
    }

    /// What killed the sink, if a fatal fault has fired.
    pub fn cause_of_death(&self) -> Option<&'static str> {
        self.dead
    }

    /// A shared view of the inner sink.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Unwraps the inner sink (e.g. to salvage the bytes it holds).
    pub fn into_inner(self) -> W {
        self.inner
    }

    fn die(&mut self, cause: &'static str, kind: io::ErrorKind) -> io::Error {
        self.dead = Some(cause);
        io::Error::new(kind, format!("{cause} after {} bytes", self.durable))
    }
}

impl<W: Write> Write for FaultedSink<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(cause) = self.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, cause));
        }
        let call = self.write_calls;
        self.write_calls += 1;
        // Fatal limit first: accept only the durable prefix, then die.
        if let Some(limit) = self.plan.death_offset() {
            if self.durable + buf.len() as u64 > limit {
                let keep = limit.saturating_sub(self.durable) as usize;
                self.inner.write_all(&buf[..keep])?;
                self.durable += keep as u64;
                let (cause, kind) = if Some(limit) == self.plan.torn_at {
                    ("injected torn write", io::ErrorKind::WriteZero)
                } else {
                    ("injected ENOSPC", io::ErrorKind::StorageFull)
                };
                return Err(self.die(cause, kind));
            }
        }
        let n = self.plan.short_write(call, buf.len()).unwrap_or(buf.len());
        self.inner.write_all(&buf[..n])?;
        self.durable += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(cause) = self.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, cause));
        }
        self.flush_calls += 1;
        if self.plan.fail_flush_at == Some(self.flush_calls) {
            return Err(self.die("injected flush failure", io::ErrorKind::Other));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut fs = SimFs::new();
        let w = fs.open("a.txt", abi::O_WRONLY).unwrap();
        assert_eq!(fs.write(w, b"hello").unwrap(), 5);
        fs.close(w).unwrap();
        let r = fs.open("a.txt", abi::O_RDONLY).unwrap();
        assert_eq!(fs.read(r, 100).unwrap(), b"hello");
        assert_eq!(fs.read(r, 100).unwrap(), b""); // EOF
        assert_eq!(fs.fsize(r), Ok(5));
    }

    #[test]
    fn open_missing_for_read_fails() {
        let mut fs = SimFs::new();
        assert_eq!(fs.open("nope", abi::O_RDONLY), Err(ENOENT));
        assert_eq!(fs.open("nope", 99), Err(EINVAL));
    }

    #[test]
    fn truncate_on_wronly_reopen() {
        let mut fs = SimFs::new();
        fs.preload("f", b"0123456789".to_vec());
        let w = fs.open("f", abi::O_WRONLY).unwrap();
        fs.write(w, b"ab").unwrap();
        assert_eq!(fs.contents("f").unwrap(), b"ab");
    }

    #[test]
    fn append_mode_appends() {
        let mut fs = SimFs::new();
        fs.preload("f", b"abc".to_vec());
        let a = fs.open("f", abi::O_APPEND).unwrap();
        fs.write(a, b"def").unwrap();
        assert_eq!(fs.contents("f").unwrap(), b"abcdef");
    }

    #[test]
    fn rdwr_sparse_write_zero_fills() {
        let mut fs = SimFs::new();
        let fd = fs.open("f", abi::O_RDWR).unwrap();
        fs.lseek(fd, 4, abi::SEEK_SET).unwrap();
        fs.write(fd, b"x").unwrap();
        assert_eq!(fs.contents("f").unwrap(), &[0, 0, 0, 0, b'x']);
    }

    #[test]
    fn lseek_whence_variants() {
        let mut fs = SimFs::new();
        fs.preload("f", b"0123456789".to_vec());
        let fd = fs.open("f", abi::O_RDONLY).unwrap();
        assert_eq!(fs.lseek(fd, 4, abi::SEEK_SET), Ok(4));
        assert_eq!(fs.lseek(fd, 2, abi::SEEK_CUR), Ok(6));
        assert_eq!(fs.lseek(fd, -1, abi::SEEK_END), Ok(9));
        assert_eq!(fs.lseek(fd, -100, abi::SEEK_CUR), Err(EINVAL));
        assert_eq!(fs.lseek(fd, 0, 7), Err(EINVAL));
        assert_eq!(fs.read(fd, 10).unwrap(), b"9");
    }

    #[test]
    fn mode_enforcement() {
        let mut fs = SimFs::new();
        fs.preload("f", b"abc".to_vec());
        let r = fs.open("f", abi::O_RDONLY).unwrap();
        assert_eq!(fs.write(r, b"x"), Err(EBADF));
        let w = fs.open("f", abi::O_WRONLY).unwrap();
        assert_eq!(fs.read(w, 1), Err(EBADF));
    }

    #[test]
    fn close_and_unlink() {
        let mut fs = SimFs::new();
        let fd = fs.open("f", abi::O_WRONLY).unwrap();
        assert_eq!(fs.close(fd), Ok(()));
        assert_eq!(fs.close(fd), Err(EBADF));
        assert_eq!(fs.unlink("f"), Ok(()));
        assert_eq!(fs.unlink("f"), Err(ENOENT));
        assert_eq!(fs.read(99, 1), Err(EBADF));
    }

    #[test]
    fn clone_is_cow_checkpoint() {
        let mut fs = SimFs::new();
        fs.preload("f", b"abc".to_vec());
        let snap = fs.clone();
        let fd = fs.open("f", abi::O_RDWR).unwrap();
        fs.write(fd, b"XYZ").unwrap();
        assert_eq!(snap.contents("f").unwrap(), b"abc");
        assert_eq!(fs.contents("f").unwrap(), b"XYZ");
        assert_ne!(snap, fs);
    }

    #[test]
    fn fd_allocation_is_deterministic() {
        let mut a = SimFs::new();
        let mut b = SimFs::new();
        for fs in [&mut a, &mut b] {
            fs.open("x", abi::O_WRONLY).unwrap();
            fs.open("y", abi::O_WRONLY).unwrap();
        }
        assert_eq!(a, b);
    }
}
