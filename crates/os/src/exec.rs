//! A plain round-robin executor: one simulated CPU, no recording.
//!
//! This is the reference semantics for guest programs — the workload test
//! suites use it to establish expected results, and the DoublePlay drivers
//! in `dp-core` must agree with it bit-for-bit when given equivalent
//! schedules. It also exercises the kernel's blocking/waking machinery.

use dp_vm::observer::NullObserver;
use dp_vm::{Fault, Machine, SliceLimits, StopReason, Tid, Word};

use crate::kernel::{Disposition, Kernel};

/// Why a [`DirectExecutor`] run ended abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A guest thread faulted.
    Fault(Fault),
    /// No thread is runnable, nothing is pending, and no future event
    /// exists: the guest deadlocked.
    Deadlock {
        /// Threads alive (all blocked) at the deadlock.
        blocked: usize,
    },
    /// The instruction budget was exhausted before the guest finished.
    BudgetExhausted,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Fault(fault) => write!(f, "guest fault: {fault}"),
            ExecError::Deadlock { blocked } => {
                write!(f, "guest deadlock with {blocked} blocked threads")
            }
            ExecError::BudgetExhausted => write!(f, "instruction budget exhausted"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<Fault> for ExecError {
    fn from(fault: Fault) -> Self {
        ExecError::Fault(fault)
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Total guest instructions executed.
    pub instructions: u64,
    /// Simulated cycles consumed (instructions + syscall and switch costs).
    pub cycles: u64,
    /// The machine's exit code if it halted via `exit`, else `None`
    /// (all threads returned).
    pub exit_code: Option<Word>,
    /// Number of scheduling slices executed.
    pub slices: u64,
}

/// Round-robin single-CPU executor.
#[derive(Debug, Clone, Copy)]
pub struct DirectExecutor {
    /// Instructions per scheduling quantum.
    pub quantum: u64,
}

impl Default for DirectExecutor {
    fn default() -> Self {
        DirectExecutor { quantum: 10_000 }
    }
}

impl DirectExecutor {
    /// Runs the guest to completion (halt or all threads exited).
    ///
    /// # Errors
    ///
    /// [`ExecError::Fault`] if guest code faults, [`ExecError::Deadlock`]
    /// if no progress is possible, [`ExecError::BudgetExhausted`] if
    /// `max_instrs` is consumed first.
    pub fn run(
        &self,
        machine: &mut Machine,
        kernel: &mut Kernel,
        max_instrs: u64,
    ) -> Result<ExecOutcome, ExecError> {
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        let mut slices = 0u64;
        let mut cursor = 0usize;
        let switch_cost = kernel.cost_model().context_switch;

        loop {
            if machine.halted().is_some() || machine.live_threads() == 0 {
                return Ok(ExecOutcome {
                    instructions,
                    cycles,
                    exit_code: machine.halted(),
                    slices,
                });
            }
            if instructions >= max_instrs {
                return Err(ExecError::BudgetExhausted);
            }

            // Pick the next ready thread round-robin from the cursor.
            let n = machine.threads().len();
            let pick = (0..n)
                .map(|i| (cursor + i) % n)
                .find(|&i| machine.threads()[i].is_ready());
            let Some(idx) = pick else {
                // Nobody is ready: advance virtual time to the next event.
                match kernel.next_event_time(cycles) {
                    Some(t) => {
                        cycles = cycles.max(t);
                        kernel.advance_time(machine, cycles);
                        continue;
                    }
                    None => {
                        return Err(ExecError::Deadlock {
                            blocked: machine.live_threads(),
                        })
                    }
                }
            };
            cursor = (idx + 1) % n;
            let tid = Tid(idx as u32);

            // Deliver one pending signal at the slice boundary.
            if let Some((sig, handler)) = kernel.take_pending_signal(tid) {
                machine.push_signal_frame(tid, handler, &[sig]);
            }

            slices += 1;
            cycles += switch_cost;
            let run =
                machine.run_slice(tid, SliceLimits::budget(self.quantum), &mut NullObserver)?;
            instructions += run.executed;
            cycles += run.executed;
            match run.stop {
                StopReason::Budget | StopReason::IcountTarget | StopReason::Atomic { .. } => {}
                StopReason::Exited => {
                    kernel.on_thread_exited(machine, tid);
                }
                StopReason::Syscall(req) => {
                    let out = kernel.handle(machine, req, cycles);
                    cycles += out.cost;
                    if let Disposition::Halted { .. } = out.disposition {
                        continue; // loop exits at the top
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi;
    use crate::kernel::WorldConfig;
    use dp_vm::builder::ProgramBuilder;
    use dp_vm::Reg;
    use std::sync::Arc;

    #[test]
    fn runs_spawn_join_to_completion() {
        let mut pb = ProgramBuilder::new();
        let mut w = pb.function("worker");
        w.mov(Reg(2), Reg(0)); // arg
        w.mul(Reg(0), Reg(2), 2i64);
        w.syscall(abi::SYS_THREAD_EXIT);
        w.finish();
        let worker = pb.declare("worker");
        let mut f = pb.function("main");
        f.consti(Reg(0), worker.0 as i64);
        f.consti(Reg(1), 21);
        f.consti(Reg(2), 0);
        f.syscall(abi::SYS_SPAWN);
        f.mov(Reg(0), Reg(0)); // tid in r0
        f.syscall(abi::SYS_JOIN);
        f.syscall(abi::SYS_EXIT); // exit(join result)
        f.finish();
        let mut m = Machine::new(Arc::new(pb.finish("main")), &[]);
        let mut k = Kernel::new(WorldConfig::default());
        let out = DirectExecutor::default()
            .run(&mut m, &mut k, 1_000_000)
            .unwrap();
        assert_eq!(out.exit_code, Some(42));
        assert!(out.instructions > 0);
        assert!(out.cycles > out.instructions);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.consti(Reg(0), 0x5000);
        f.consti(Reg(1), 0);
        f.syscall(abi::SYS_FUTEX_WAIT); // nobody will ever wake us
        f.ret();
        f.finish();
        let mut m = Machine::new(Arc::new(pb.finish("main")), &[]);
        let mut k = Kernel::new(WorldConfig::default());
        let err = DirectExecutor::default()
            .run(&mut m, &mut k, 1_000_000)
            .unwrap_err();
        assert_eq!(err, ExecError::Deadlock { blocked: 1 });
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let top = f.label();
        f.bind(top);
        f.jmp(top); // infinite loop
        f.finish();
        let mut m = Machine::new(Arc::new(pb.finish("main")), &[]);
        let mut k = Kernel::new(WorldConfig::default());
        let err = DirectExecutor::default()
            .run(&mut m, &mut k, 50_000)
            .unwrap_err();
        assert_eq!(err, ExecError::BudgetExhausted);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.consti(Reg(0), 1_000_000);
        f.syscall(abi::SYS_SLEEP);
        f.syscall(abi::SYS_CLOCK);
        f.syscall(abi::SYS_EXIT); // exit(clock)
        f.finish();
        let mut m = Machine::new(Arc::new(pb.finish("main")), &[]);
        let mut k = Kernel::new(WorldConfig::default());
        let out = DirectExecutor::default()
            .run(&mut m, &mut k, 1_000_000)
            .unwrap();
        assert!(out.exit_code.unwrap() >= 1_000_000);
        assert!(out.cycles >= 1_000_000);
    }

    #[test]
    fn signal_handler_runs() {
        let mut pb = ProgramBuilder::new();
        let flag = pb.global("flag", 8);
        let mut h = pb.function("handler");
        // r0 = signal number; store it to flag.
        h.consti(Reg(1), flag as i64);
        h.store(Reg(0), Reg(1), 0, dp_vm::Width::W8);
        h.ret();
        h.finish();
        let handler = pb.declare("handler");
        let mut f = pb.function("main");
        let spin = f.label();
        f.consti(Reg(0), 7);
        f.consti(Reg(1), handler.0 as i64);
        f.syscall(abi::SYS_SIGACTION);
        f.consti(Reg(0), 0); // self tid
        f.consti(Reg(1), 7);
        f.syscall(abi::SYS_KILL);
        // Spin until the handler (delivered at a slice boundary) sets flag.
        f.bind(spin);
        f.consti(Reg(2), flag as i64);
        f.load(Reg(3), Reg(2), 0, dp_vm::Width::W8);
        f.jz(Reg(3), spin);
        f.mov(Reg(0), Reg(3));
        f.syscall(abi::SYS_EXIT);
        f.finish();
        let mut m = Machine::new(Arc::new(pb.finish("main")), &[]);
        let mut k = Kernel::new(WorldConfig::default());
        let out = DirectExecutor { quantum: 100 }
            .run(&mut m, &mut k, 10_000_000)
            .unwrap();
        assert_eq!(out.exit_code, Some(7));
    }
}
