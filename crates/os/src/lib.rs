//! # dp-os — the simulated operating system substrate
//!
//! DoublePlay records a process at the OS boundary: syscall results, signal
//! delivery, and thread scheduling. The original runs on a modified Linux
//! kernel with Speculator support for deferring and undoing speculative
//! syscall effects; this crate is the simulated equivalent, built so that
//! **the entire world state is checkpointable**: [`kernel::Kernel`] is
//! `Clone`, and `(Machine, Kernel)` pairs snapshot and roll back together.
//!
//! What lives here:
//!
//! * [`abi`] — syscall numbers, conventions, and the logged/re-executed
//!   determinism classification that record/replay is built on;
//! * [`kernel`] — dispatch, futexes, joins, virtual timers, signals, the
//!   speculative external-output journal;
//! * [`fs`] / [`net`] — an in-memory filesystem and a scripted external
//!   network (peers and clients) providing realistic nondeterministic input;
//! * [`cost`] — the simulated-time cost model behind every overhead figure;
//! * [`faults`] — deterministic syscall-level fault injection (I/O errors,
//!   short reads, connection resets) that stays bit-exactly replayable;
//! * [`guest`] — a Pthreads-alike runtime library (mutex, barrier, blocking
//!   queue, memcpy, printing) written in guest bytecode;
//! * [`exec`] — a plain uniprocessor executor used as reference semantics.
//!
//! ## Example: run a guest that prints
//!
//! ```
//! use dp_os::exec::DirectExecutor;
//! use dp_os::kernel::{Kernel, WorldConfig};
//! use dp_os::{abi, guest::Rt};
//! use dp_vm::builder::ProgramBuilder;
//! use dp_vm::{Machine, Reg};
//! use std::sync::Arc;
//!
//! let mut pb = ProgramBuilder::new();
//! let rt = Rt::install(&mut pb);
//! let mut f = pb.function("main");
//! f.consti(Reg(0), 42);
//! f.call(rt.print_u64);
//! f.consti(Reg(0), 0);
//! f.syscall(abi::SYS_EXIT);
//! f.finish();
//!
//! let mut machine = Machine::new(Arc::new(pb.finish("main")), &[]);
//! let mut kernel = Kernel::new(WorldConfig::default());
//! DirectExecutor::default().run(&mut machine, &mut kernel, 1_000_000)?;
//! let out: Vec<u8> = kernel.take_external().into_iter().flat_map(|c| c.bytes).collect();
//! assert_eq!(out, b"42\n");
//! # Ok::<(), dp_os::exec::ExecError>(())
//! ```

#![warn(missing_docs)]

pub mod abi;
pub mod cost;
pub mod exec;
pub mod faults;
pub mod fs;
pub mod guest;
pub mod kernel;
pub mod net;

pub use cost::CostModel;
pub use exec::{DirectExecutor, ExecError, ExecOutcome};
pub use faults::IoFaults;
pub use fs::{FaultedSink, SinkFaults};
pub use kernel::{
    Disposition, ExternalChunk, ExternalDest, Kernel, KernelStats, SysOutcome, SyscallEffect, Wake,
    WorldConfig,
};
pub use net::{ClientSpec, NetConfig, PeerBehavior};
