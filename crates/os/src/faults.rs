//! Deterministic syscall-level fault injection.
//!
//! An [`IoFaults`] plan makes the simulated kernel inject I/O errors, short
//! reads, and connection resets — *deterministically*. Decisions are not
//! drawn from a stateful RNG; they are a pure hash of semantic coordinates:
//!
//! ```text
//! decide = roll(mix(seed, tid, thread-icount-at-trap, syscall, salt), p)
//! ```
//!
//! A thread's instruction count at a trap is a property of the guest's own
//! execution path, not of the interleaving, so the same trap gets the same
//! verdict in the thread-parallel run, the epoch-parallel verify run, and
//! every replay — which is exactly what keeps recordings of faulty runs
//! bit-exactly replayable. No fault state needs checkpointing beyond the
//! immutable plan itself.

use dp_support::rng::{mix, roll};

const SALT_FAIL: u64 = 0xfa11;
const SALT_SHORT: u64 = 0x5047;
const SALT_RESET: u64 = 0x7e5e;

/// Syscall fault-injection plan carried by the kernel. `Default` is no
/// faults at all.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoFaults {
    /// Seed that decorrelates plans with equal probabilities.
    pub seed: u64,
    /// Probability that an I/O syscall (open/read/send/recv) fails outright
    /// with `EIO` / `ECONNRESET`.
    pub fail_p: f64,
    /// Probability that a read/recv is truncated to a shorter length.
    pub short_read_p: f64,
    /// Probability that a socket operation observes a connection reset.
    pub reset_p: f64,
}

impl IoFaults {
    /// No injected faults.
    pub fn none() -> Self {
        IoFaults::default()
    }

    /// True when any probability is non-zero (fast path gate).
    pub fn is_active(&self) -> bool {
        self.fail_p > 0.0 || self.short_read_p > 0.0 || self.reset_p > 0.0
    }

    /// Should this trap fail with an I/O error?
    pub fn fail(&self, tid: u32, icount: u64, num: u32) -> bool {
        self.fail_p > 0.0
            && roll(
                mix(&[self.seed, u64::from(tid), icount, u64::from(num), SALT_FAIL]),
                self.fail_p,
            )
    }

    /// Should this socket trap observe a connection reset?
    pub fn reset(&self, tid: u32, icount: u64, num: u32) -> bool {
        self.reset_p > 0.0
            && roll(
                mix(&[
                    self.seed,
                    u64::from(tid),
                    icount,
                    u64::from(num),
                    SALT_RESET,
                ]),
                self.reset_p,
            )
    }

    /// If a short read fires, the reduced transfer length in `[1, len]`;
    /// `None` to use the full length. A zero-length result is never
    /// produced because that would be indistinguishable from end-of-stream.
    pub fn short_len(&self, tid: u32, icount: u64, num: u32, len: u64) -> Option<u64> {
        if len <= 1 || self.short_read_p <= 0.0 {
            return None;
        }
        let h = mix(&[
            self.seed,
            u64::from(tid),
            icount,
            u64::from(num),
            SALT_SHORT,
        ]);
        if roll(h, self.short_read_p) {
            Some(1 + mix(&[h, len]) % len)
        } else {
            None
        }
    }
}

dp_support::impl_wire_struct!(IoFaults {
    seed,
    fail_p,
    short_read_p,
    reset_p
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        let f = IoFaults::none();
        assert!(!f.is_active());
        assert!(!f.fail(0, 100, 14));
        assert!(!f.reset(0, 100, 22));
        assert_eq!(f.short_len(0, 100, 22, 4096), None);
    }

    #[test]
    fn decisions_are_deterministic() {
        let f = IoFaults {
            seed: 9,
            fail_p: 0.5,
            short_read_p: 0.5,
            reset_p: 0.5,
        };
        for icount in 0..200 {
            assert_eq!(f.fail(1, icount, 14), f.fail(1, icount, 14));
            assert_eq!(
                f.short_len(1, icount, 22, 100),
                f.short_len(1, icount, 22, 100)
            );
        }
    }

    #[test]
    fn fail_rate_tracks_probability() {
        let f = IoFaults {
            seed: 3,
            fail_p: 0.1,
            ..IoFaults::none()
        };
        let hits = (0..10_000).filter(|&i| f.fail(0, i, 14)).count();
        assert!((800..1_200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn short_len_is_in_range_and_never_zero() {
        let f = IoFaults {
            seed: 5,
            short_read_p: 1.0,
            ..IoFaults::none()
        };
        for len in 2..100u64 {
            let s = f.short_len(2, len * 7, 22, len).expect("p=1 must fire");
            assert!(s >= 1 && s <= len, "short {s} of {len}");
        }
        // len <= 1 never truncates.
        assert_eq!(f.short_len(2, 1, 22, 1), None);
        assert_eq!(f.short_len(2, 1, 22, 0), None);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = IoFaults {
            seed: 1,
            fail_p: 0.5,
            ..IoFaults::none()
        };
        let b = IoFaults {
            seed: 2,
            fail_p: 0.5,
            ..IoFaults::none()
        };
        let same = (0..1_000)
            .filter(|&i| a.fail(0, i, 14) == b.fail(0, i, 14))
            .count();
        assert!(same > 300 && same < 700, "agreement = {same}");
    }
}
