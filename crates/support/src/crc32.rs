//! IEEE CRC-32 (the zlib/gzip polynomial), used to checksum recording
//! container frames so corruption is detected before decoding.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// Compute the IEEE CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0xa5u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base);
            }
        }
    }
}
