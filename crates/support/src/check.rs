//! A miniature property-test harness (stand-in for proptest).
//!
//! [`check`] runs a closure over a number of seeded cases. Each case gets
//! a [`Gen`] for drawing random inputs; assertion failures inside the
//! closure are caught, the failing case's seed is printed, and the panic
//! is re-raised so the surrounding `#[test]` still fails. Re-run a single
//! case by setting `DP_CHECK_SEED=<seed>` in the environment.

use crate::rng::{mix, SplitMix64};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base seed for a deterministic suite; changes only when tests opt in
/// via the `DP_CHECK_SEED` environment variable.
const BASE_SEED: u64 = 0xd0b1_e9a7_c0ff_ee00;

/// Per-case random input source.
pub struct Gen {
    rng: SplitMix64,
    /// Seed identifying this case (printed on failure).
    pub case_seed: u64,
}

impl Gen {
    /// Build a generator for one case.
    pub fn new(case_seed: u64) -> Self {
        Gen {
            rng: SplitMix64::new(case_seed),
            case_seed,
        }
    }

    /// Uniform 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform value in `[0, bound)` (0 when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.below(bound)
    }

    /// Uniform value in `[lo, hi)`; requires `lo < hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.rng.below(hi - lo)
    }

    /// Uniform usize in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.rng.below(bound as u64) as usize
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// True with probability `p`.
    pub fn prob(&mut self, p: f64) -> bool {
        crate::rng::roll(self.rng.next_u64(), p)
    }

    /// Uniform byte.
    pub fn u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// Random bytes with length in `[0, max_len]`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.rng.below(max_len as u64 + 1) as usize;
        (0..len).map(|_| self.u8()).collect()
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.index(xs.len())]
    }
}

/// Run `cases` seeded cases of the property `f`. On failure, prints the
/// case seed (re-runnable via `DP_CHECK_SEED`) and re-raises the panic.
pub fn check(name: &str, cases: u64, mut f: impl FnMut(&mut Gen)) {
    if let Ok(fixed) = std::env::var("DP_CHECK_SEED") {
        let seed = parse_seed(&fixed);
        let mut gen = Gen::new(seed);
        f(&mut gen);
        return;
    }
    for case in 0..cases {
        let seed = mix(&[BASE_SEED, case]);
        let mut gen = Gen::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut gen))) {
            eprintln!("property `{name}` failed: case {case}, DP_CHECK_SEED={seed:#x}");
            resume_unwind(payload);
        }
    }
}

fn parse_seed(s: &str) -> u64 {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("DP_CHECK_SEED: bad hex seed")
    } else {
        s.parse().expect("DP_CHECK_SEED: bad seed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        check("collect", 5, |g| first.push(g.u64()));
        let mut second = Vec::new();
        check("collect", 5, |g| second.push(g.u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn failures_propagate() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always-fails", 3, |_| panic!("boom"));
        }));
        assert!(result.is_err());
    }
}
