//! A compact, panic-free binary codec.
//!
//! `Wire` plays the role serde + bincode played before the workspace went
//! dependency-free: every checkpointable type implements it, either by hand
//! or through the [`impl_wire_struct!`](crate::impl_wire_struct),
//! [`impl_wire_newtype!`](crate::impl_wire_newtype) and
//! [`impl_wire_enum!`](crate::impl_wire_enum) macros.
//!
//! Design rules, chosen so corrupted input can never panic or OOM the
//! decoder (the fault-injection suite depends on this):
//!
//! - integers are LEB128 varints (zigzag for signed), so truncation is
//!   always detected as "ran out of bytes";
//! - decoded collections grow incrementally — lengths read from the
//!   stream are *never* trusted for pre-allocation;
//! - every failure path returns [`WireError`] with the byte offset and a
//!   static context string, mirroring the log codec's `CodecError`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Decoding error: byte offset where decoding failed plus what was being
/// decoded. All decode paths return this; none panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset in the input where the failure was detected.
    pub offset: usize,
    /// What the decoder was trying to read.
    pub context: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire decode error at byte {}: {}",
            self.offset, self.context
        )
    }
}

impl std::error::Error for WireError {}

/// Cursor over an input buffer. Every read is bounds-checked.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(WireError {
                offset: self.pos,
                context,
            }),
        }
    }

    /// Read `n` raw bytes.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError {
                offset: self.pos,
                context,
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read an LEB128-encoded u64.
    pub fn varint(&mut self, context: &'static str) -> Result<u64, WireError> {
        let start = self.pos;
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(context)?;
            if shift >= 63 && byte > 1 {
                return Err(WireError {
                    offset: start,
                    context: "varint overflow",
                });
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError {
                    offset: start,
                    context: "varint too long",
                });
            }
        }
    }
}

/// Append an LEB128-encoded u64.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Binary serialization to/from the wire format.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decode a value from the reader.
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encode a value to a fresh byte vector.
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut out = Vec::new();
    v.put(&mut out);
    out
}

/// Decode a value, requiring the buffer to be fully consumed.
pub fn from_bytes<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(buf);
    let v = T::get(&mut r)?;
    if !r.is_empty() {
        return Err(WireError {
            offset: r.pos(),
            context: "trailing bytes",
        });
    }
    Ok(v)
}

impl Wire for u8 {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u8("u8")
    }
}

impl Wire for u64 {
    fn put(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.varint("u64")
    }
}

impl Wire for u16 {
    fn put(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(*self));
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let off = r.pos();
        u16::try_from(r.varint("u16")?).map_err(|_| WireError {
            offset: off,
            context: "u16 range",
        })
    }
}

impl Wire for u32 {
    fn put(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(*self));
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let off = r.pos();
        u32::try_from(r.varint("u32")?).map_err(|_| WireError {
            offset: off,
            context: "u32 range",
        })
    }
}

impl Wire for usize {
    fn put(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let off = r.pos();
        usize::try_from(r.varint("usize")?).map_err(|_| WireError {
            offset: off,
            context: "usize range",
        })
    }
}

impl Wire for i64 {
    fn put(&self, out: &mut Vec<u8>) {
        // Zigzag so small-magnitude negatives stay short.
        put_varint(out, ((*self << 1) ^ (*self >> 63)) as u64);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let z = r.varint("i64")?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

impl Wire for i32 {
    fn put(&self, out: &mut Vec<u8>) {
        i64::from(*self).put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let off = r.pos();
        i32::try_from(i64::get(r)?).map_err(|_| WireError {
            offset: off,
            context: "i32 range",
        })
    }
}

impl Wire for f64 {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let raw = r.take(8, "f64")?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }
}

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let off = r.pos();
        match r.u8("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError {
                offset: off,
                context: "bool out of range",
            }),
        }
    }
}

impl Wire for () {
    fn put(&self, _out: &mut Vec<u8>) {}
    fn get(_r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::get(r)?;
        let off = r.pos();
        let raw = r.take(len, "string bytes")?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError {
            offset: off,
            context: "invalid utf-8",
        })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for v in self {
            v.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::get(r)?;
        // Grow incrementally: a corrupted length must not pre-allocate.
        let mut v = Vec::new();
        for _ in 0..len {
            v.push(T::get(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for VecDeque<T> {
    fn put(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for v in self {
            v.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Vec::<T>::get(r)?.into())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let off = r.pos();
        match r.u8("option tag")? {
            0 => Ok(None),
            1 => Ok(Some(T::get(r)?)),
            _ => Err(WireError {
                offset: off,
                context: "option tag out of range",
            }),
        }
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn put(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for (k, v) in self {
            k.put(out);
            v.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::get(r)?;
        let mut m = BTreeMap::new();
        for _ in 0..len {
            let k = K::get(r)?;
            let v = V::get(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T: Wire + Ord> Wire for BTreeSet<T> {
    fn put(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for v in self {
            v.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::get(r)?;
        let mut s = BTreeSet::new();
        for _ in 0..len {
            s.insert(T::get(r)?);
        }
        Ok(s)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::get(r)?, B::get(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
        self.2.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::get(r)?, B::get(r)?, C::get(r)?))
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn put(&self, out: &mut Vec<u8>) {
        for v in self {
            v.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let off = r.pos();
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::get(r)?);
        }
        v.try_into().map_err(|_| WireError {
            offset: off,
            context: "array length",
        })
    }
}

/// An opaque byte payload with a fast-path encoding.
///
/// `Vec<u8>` already implements [`Wire`] through the generic `Vec<T>`
/// impl, but that path dispatches per element — fine for small
/// collections, wasteful for the multi-kilobyte journal chunks the
/// `dpnet` attach stream carries. `Bytes` encodes the same way on the
/// wire (varint length + raw bytes) but copies with one `memcpy` each
/// direction, and decoding stays bounds-checked: the length read from
/// the stream is validated against the remaining buffer *before* any
/// allocation, so a corrupted length can never pre-allocate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(pub Vec<u8>);

impl Wire for Bytes {
    fn put(&self, out: &mut Vec<u8>) {
        put_varint(out, self.0.len() as u64);
        out.extend_from_slice(&self.0);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::get(r)?;
        // `take` refuses lengths past the end of the buffer, so the
        // allocation below is always bounded by the input size.
        Ok(Bytes(r.take(len, "byte payload")?.to_vec()))
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl<T: Wire> Wire for Arc<T> {
    fn put(&self, out: &mut Vec<u8>) {
        T::put(self, out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Arc::new(T::get(r)?))
    }
}

/// Implement [`Wire`] for a struct with named fields, encoding the fields
/// in declaration order.
#[macro_export]
macro_rules! impl_wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                $( $crate::wire::Wire::put(&self.$field, out); )+
            }
            fn get(
                r: &mut $crate::wire::Reader<'_>,
            ) -> Result<Self, $crate::wire::WireError> {
                $( let $field = $crate::wire::Wire::get(r)?; )+
                Ok(Self { $($field),+ })
            }
        }
    };
}

/// Implement [`Wire`] for a single-field tuple struct (newtype).
#[macro_export]
macro_rules! impl_wire_newtype {
    ($ty:ident) => {
        impl $crate::wire::Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                $crate::wire::Wire::put(&self.0, out);
            }
            fn get(r: &mut $crate::wire::Reader<'_>) -> Result<Self, $crate::wire::WireError> {
                Ok($ty($crate::wire::Wire::get(r)?))
            }
        }
    };
}

/// Implement [`Wire`] for an enum whose variants are unit or named-field,
/// using explicit one-byte tags. Unknown tags decode to a [`WireError`].
#[macro_export]
macro_rules! impl_wire_enum {
    ($ty:ident { $( $tag:literal => $variant:ident $( { $($field:ident),+ $(,)? } )? ),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                match self {
                    $(
                        $ty::$variant $( { $($field),+ } )? => {
                            out.push($tag);
                            $( $( $crate::wire::Wire::put($field, out); )+ )?
                        }
                    )+
                }
            }
            fn get(
                r: &mut $crate::wire::Reader<'_>,
            ) -> Result<Self, $crate::wire::WireError> {
                let off = r.pos();
                let tag = r.u8(concat!(stringify!($ty), " tag"))?;
                match tag {
                    $(
                        $tag => {
                            $( $( let $field = $crate::wire::Wire::get(r)?; )+ )?
                            Ok($ty::$variant $( { $($field),+ } )?)
                        }
                    )+
                    _ => Err($crate::wire::WireError {
                        offset: off,
                        context: concat!("unknown ", stringify!($ty), " tag"),
                    }),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let bytes = to_bytes(&v);
            assert_eq!(from_bytes::<u64>(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let bytes = to_bytes(&v);
            assert_eq!(from_bytes::<i64>(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn collections_roundtrip() {
        let m: BTreeMap<u64, Vec<String>> = [(3, vec!["abc".to_string()]), (9, vec![])]
            .into_iter()
            .collect();
        assert_eq!(
            from_bytes::<BTreeMap<u64, Vec<String>>>(&to_bytes(&m)).unwrap(),
            m
        );
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let full = to_bytes(&vec![1u64, 2, 3, u64::MAX]);
        for cut in 0..full.len() {
            assert!(from_bytes::<Vec<u64>>(&full[..cut]).is_err());
        }
    }

    #[test]
    fn huge_length_prefix_does_not_allocate() {
        // Length claims 2^60 elements but the buffer is 9 bytes long.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 60);
        assert!(from_bytes::<Vec<u8>>(&buf).is_err());
    }

    #[test]
    fn bytes_fast_path_matches_vec_encoding_and_rejects_huge_lengths() {
        let payload = Bytes(vec![7u8; 300]);
        let encoded = to_bytes(&payload);
        // Same wire layout as the generic Vec<u8> impl.
        assert_eq!(encoded, to_bytes(&payload.0));
        assert_eq!(from_bytes::<Bytes>(&encoded).unwrap(), payload);
        // A length claiming far more than the buffer holds is a typed
        // error before any allocation happens.
        let mut lying = Vec::new();
        put_varint(&mut lying, 1 << 60);
        lying.extend_from_slice(b"xy");
        assert!(from_bytes::<Bytes>(&lying).is_err());
        // Truncation anywhere is an error, never a panic.
        for cut in 0..encoded.len() {
            assert!(from_bytes::<Bytes>(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u64);
        bytes.push(0);
        assert!(from_bytes::<u64>(&bytes).is_err());
    }
}
