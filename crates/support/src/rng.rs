//! Deterministic randomness: SplitMix64 (sequential streams) and a
//! stateless avalanche hash (`mix`) for order-independent decisions.
//!
//! Fault injection deliberately uses `mix` over *semantic* coordinates
//! (seed, thread id, instruction count, syscall number) instead of a
//! stateful RNG: the decision for a given trap is then identical no matter
//! which run (thread-parallel, epoch-parallel verify, replay) encounters
//! it, and no RNG state has to be checkpointed.

/// Finalizing avalanche step from SplitMix64.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash an arbitrary tuple of coordinates into a single well-mixed word.
pub fn mix(parts: &[u64]) -> u64 {
    let mut acc = 0x243f_6a88_85a3_08d3u64; // pi, nothing up the sleeve
    for &p in parts {
        acc = mix64(acc ^ p);
    }
    acc
}

/// Map a hash to a uniform probability in [0, 1) and compare against `p`.
/// `p <= 0` never fires; `p >= 1` always fires.
#[inline]
pub fn roll(hash: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    // 53 high bits -> uniform double in [0, 1).
    let unit = (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < p
}

/// SplitMix64: tiny, fast, and good enough for test-case generation and
/// the recorder's hidden schedule jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is negligible for our bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_sensitive() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[1, 2, 4]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
    }

    #[test]
    fn roll_edges() {
        assert!(!roll(u64::MAX, 0.0));
        assert!(roll(0, 1.0));
        assert!(roll(u64::MAX, 1.5));
        assert!(!roll(u64::MAX, 0.999_999));
    }

    #[test]
    fn roll_rate_tracks_probability() {
        let mut hits = 0u32;
        for i in 0..10_000u64 {
            if roll(mix(&[42, i]), 0.1) {
                hits += 1;
            }
        }
        assert!((800..1_200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1_000 {
            assert!(rng.below(13) < 13);
        }
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }
}
