//! Dependency-free support layer for the DoublePlay workspace.
//!
//! The build environment is fully offline, so everything that the stack
//! would normally pull from crates.io lives here instead:
//!
//! - [`wire`] — a compact, panic-free binary codec (the stand-in for
//!   serde + bincode) used by checkpoints and the recording container.
//! - [`crc32`] — IEEE CRC-32 for recording-frame integrity checks.
//! - [`rng`] — SplitMix64 and the stateless `mix` hash that drives
//!   deterministic fault injection.
//! - [`check`] — a tiny seeded property-test harness (the stand-in for
//!   proptest) used by the randomized test suites.

#![warn(missing_docs)]

pub mod check;
pub mod crc32;
pub mod rng;
pub mod wire;
