//! `dp` — command-line record/replay/analysis for the bundled workloads.
//!
//! ```text
//! dp record <workload> [--threads N] [--size small|medium|large]
//!           [--epoch CYCLES] [--seed S] [--out FILE] [--journal FILE]
//!           [--journal-shards N]
//! dp salvage <JOURNAL> [-o FILE]
//! dp replay <FILE> --workload <workload> [--threads N] [--size ...] [--parallel N]
//! dp analyze <FILE> race   --workload <name> [--threads N] [--size S]
//!                          [--assert-races | --assert-clean]
//! dp analyze <FILE> triage --workload <name> [--threads N] [--size S]
//! dp analyze <FILE> inspect
//! dp analyze <FILE> diff <FILE2>
//! dp analyze <FILE> compact [--out FILE] [--workload <name> ...]
//! dp inspect <FILE>
//! dp serve [--sessions N] [--dir PATH] [--runners N] [--cores N]
//!          [--capacity N] [--threads N] [--size S] [--seed X] [--faults]
//!          [--journal-shards N] [--json]
//! dp serve --socket PATH [--dir PATH] [--runners N] [--cores N]
//!          [--capacity N] [--conns N] [--resume-adopted] [--resume-budget N]
//! dp submit <workload> --socket PATH [--threads N] [--size S] [--epoch C]
//!           [--seed X] [--pipelined] [--workers N] [--priority P] [--wait]
//! dp resume <ID> --socket PATH
//! dp attach <ID> --socket PATH [-o FILE]
//! dp shutdown --socket PATH
//! dp sessions <DIR>
//! dp sessions --socket PATH [--json]
//! dp list
//! ```
//!
//! The workload name selects the guest program; `replay` and the
//! replay-based analyses need it again (with the same parameters) because
//! recordings carry only a program hash, not the program itself.
//!
//! `--journal` streams the recording to a crash-consistent `DPRJ` journal
//! while it is produced; `dp salvage` recovers the committed epoch prefix
//! from a journal a crash left behind. Adding `--journal-shards N` splits
//! the journal into `N` group-committed `DPRS` shard streams
//! (`FILE.s0`..`FILE.s{N-1}`) appended by independent lanes — far fewer
//! flushes at the same durability grain — and `dp salvage FILE.s0`
//! gathers the sibling shards and reconstructs the longest *consistent
//! cross-shard prefix*. Every output file is written atomically
//! (`<path>.tmp` + rename) except the journal itself, whose entire point
//! is to be written incrementally.
//!
//! `dp serve` runs the `dpd` multi-session service in-process: it admits
//! a batch of mixed-workload sessions (cycling priorities and, with
//! `--faults`, per-session decorrelated fault plans) against a shared
//! verify-core pool, streams one `DPRJ` journal per session into `--dir`,
//! and prints the final session table. `dp sessions <DIR>` is the
//! post-mortem view: it salvages every single-stream journal in the
//! directory independently and merges every `.s<K>.dprs` shard set it
//! finds — exactly what you run after killing a serve mid-flight.
//!
//! With `--socket PATH`, `dp serve` instead becomes a long-lived `dpnet`
//! daemon: it re-adopts any journals a previous incarnation left in
//! `--dir` (finalized, salvageable, or garbage — all surfaced), then
//! accepts framed requests on a unix-domain socket until a client sends
//! shutdown. With `--resume-adopted`, every salvageable journal the boot
//! scan re-adopts is immediately *resumed*: the session continues
//! recording from its committed prefix instead of being left terminal
//! (`--resume-budget N` caps how many resumes one boot may spend).
//! `dp submit`, `dp resume`, `dp attach`, `dp shutdown`, and
//! `dp sessions --socket` are the matching clients; `dp resume <ID>`
//! asks a serving daemon to continue a crashed (`Salvaged`) session from
//! its committed prefix; `dp attach` tails a
//! session's committed journal bytes live and writes whatever prefix it
//! received even if the daemon dies mid-stream — that prefix is always
//! salvageable.
//!
//! Failures exit nonzero with a one-line `error: <command>: <detail>`
//! message; a missing or truncated recording file is never a panic.

use doubleplay::analyze;
use doubleplay::prelude::*;
use doubleplay::workloads::{racy_suite, suite};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  dp list\n  dp record <workload> [--threads N] [--size S] [--epoch C] [--seed X] [--pipelined] [--workers N] [--out FILE] [--journal FILE] [--journal-shards N]\n  dp salvage <JOURNAL> [-o FILE]\n  dp replay <FILE> --workload <name> [--threads N] [--size S] [--parallel N]\n  dp analyze <FILE> race --workload <name> [--threads N] [--size S] [--assert-races|--assert-clean]\n  dp analyze <FILE> triage --workload <name> [--threads N] [--size S]\n  dp analyze <FILE> inspect\n  dp analyze <FILE> diff <FILE2>\n  dp analyze <FILE> compact [--out FILE] [--workload <name>]\n  dp inspect <FILE>\n  dp serve [--sessions N] [--dir PATH] [--runners N] [--cores N] [--capacity N] [--threads N] [--size S] [--seed X] [--faults] [--journal-shards N] [--json]\n  dp serve --socket PATH [--dir PATH] [--runners N] [--cores N] [--capacity N] [--conns N] [--resume-adopted] [--resume-budget N]\n  dp submit <workload> --socket PATH [--threads N] [--size S] [--epoch C] [--seed X] [--pipelined] [--workers N] [--priority high|normal|low] [--wait]\n  dp resume <ID> --socket PATH\n  dp attach <ID> --socket PATH [-o FILE]\n  dp shutdown --socket PATH\n  dp sessions <DIR> | dp sessions --socket PATH [--json]"
    );
    exit(2);
}

/// One-line structured failure: `error: <what>: <detail>`, exit 1.
fn fail(what: &str, detail: impl std::fmt::Display) -> ! {
    eprintln!("error: {what}: {detail}");
    exit(1);
}

/// Writes `bytes` to `path` atomically: the content goes to `<path>.tmp`,
/// renamed over the destination only once fully written — a crash or a
/// full disk mid-write never leaves a torn output file behind.
fn write_atomic(cmd: &str, path: &str, bytes: &[u8]) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, bytes)
        .unwrap_or_else(|e| fail(cmd, format_args!("cannot write `{tmp}`: {e}")));
    std::fs::rename(&tmp, path)
        .unwrap_or_else(|e| fail(cmd, format_args!("cannot rename `{tmp}` to `{path}`: {e}")));
}

/// Reads and parses a recording in any container format (`DPRC`, compact
/// `DPRZ`, or a finalized `DPRJ` journal), failing with a structured error
/// instead of panicking.
fn load_recording(cmd: &str, path: &str) -> Recording {
    let bytes = std::fs::read(path)
        .unwrap_or_else(|e| fail(cmd, format_args!("cannot read `{path}`: {e}")));
    analyze::load_any(&bytes)
        .unwrap_or_else(|e| fail(cmd, format_args!("cannot parse `{path}`: {e}")))
}

/// Splits a `BASE.s<K>` shard-stream path into its base journal path, for
/// gathering the sibling shards of a `DPRS` set.
fn shard_base(path: &str) -> Option<&str> {
    let (base, k) = path.rsplit_once(".s")?;
    (!k.is_empty() && k.bytes().all(|b| b.is_ascii_digit())).then_some(base)
}

fn parse_size(s: &str) -> Size {
    match s {
        "small" => Size::Small,
        "medium" => Size::Medium,
        "large" => Size::Large,
        _ => usage(),
    }
}

struct Opts {
    threads: usize,
    size: Size,
    epoch: u64,
    seed: u64,
    out: Option<String>,
    journal: Option<String>,
    journal_shards: u32,
    workload: Option<String>,
    parallel: usize,
    pipelined: bool,
    workers: Option<usize>,
    assert_races: bool,
    assert_clean: bool,
    sessions: usize,
    dir: String,
    runners: usize,
    cores: usize,
    capacity: usize,
    faults: bool,
    socket: Option<String>,
    conns: usize,
    priority: Priority,
    wait: bool,
    json: bool,
    resume_adopted: bool,
    resume_budget: Option<u32>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        threads: 2,
        size: Size::Small,
        epoch: 200_000,
        seed: DoublePlayConfig::new(2).hidden_seed,
        out: None,
        journal: None,
        journal_shards: 0,
        workload: None,
        parallel: 0,
        pipelined: false,
        workers: None,
        assert_races: false,
        assert_clean: false,
        sessions: 24,
        dir: "dpd-journals".to_string(),
        runners: 4,
        cores: 4,
        capacity: 16,
        faults: false,
        socket: None,
        conns: 8,
        priority: Priority::Normal,
        wait: false,
        json: false,
        resume_adopted: false,
        resume_budget: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--threads" => o.threads = val().parse().unwrap_or_else(|_| usage()),
            "--size" => o.size = parse_size(&val()),
            "--epoch" => o.epoch = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| usage()),
            "--out" | "-o" => o.out = Some(val()),
            "--journal" => o.journal = Some(val()),
            "--journal-shards" => o.journal_shards = val().parse().unwrap_or_else(|_| usage()),
            "--workload" => o.workload = Some(val()),
            "--parallel" => o.parallel = val().parse().unwrap_or_else(|_| usage()),
            "--pipelined" => o.pipelined = true,
            "--workers" => o.workers = Some(val().parse().unwrap_or_else(|_| usage())),
            "--assert-races" => o.assert_races = true,
            "--assert-clean" => o.assert_clean = true,
            "--sessions" => o.sessions = val().parse().unwrap_or_else(|_| usage()),
            "--dir" => o.dir = val(),
            "--runners" => o.runners = val().parse().unwrap_or_else(|_| usage()),
            "--cores" => o.cores = val().parse().unwrap_or_else(|_| usage()),
            "--capacity" => o.capacity = val().parse().unwrap_or_else(|_| usage()),
            "--faults" => o.faults = true,
            "--socket" => o.socket = Some(val()),
            "--conns" => o.conns = val().parse().unwrap_or_else(|_| usage()),
            "--priority" => {
                o.priority = match val().as_str() {
                    "high" => Priority::High,
                    "normal" => Priority::Normal,
                    "low" => Priority::Low,
                    _ => usage(),
                }
            }
            "--wait" => o.wait = true,
            "--json" => o.json = true,
            "--resume-adopted" => o.resume_adopted = true,
            "--resume-budget" => {
                o.resume_budget = Some(val().parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    o
}

fn find_case(name: &str, threads: usize, size: Size) -> WorkloadCase {
    suite(threads, size)
        .into_iter()
        .chain(racy_suite(threads, size))
        .find(|c| c.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload `{name}` (try `dp list`)");
            exit(2);
        })
}

/// The replay-based analyses need the recorded program; resolve it from
/// `--workload` or fail with a structured error.
fn required_case(cmd: &str, o: &Opts) -> WorkloadCase {
    let Some(name) = &o.workload else {
        fail(
            cmd,
            "missing --workload <name> (the recording stores only a program hash)",
        );
    };
    find_case(name, o.threads, o.size)
}

fn cmd_analyze(argv: &[String]) {
    let Some(path) = argv.first() else { usage() };
    let Some(mode) = argv.get(1) else { usage() };
    match mode.as_str() {
        "race" | "triage" => {
            let o = parse_opts(&argv[2..]);
            let case = required_case("analyze", &o);
            let recording = load_recording("analyze", path);
            let report = analyze::detect_races(&recording, &case.spec.program)
                .unwrap_or_else(|e| fail("analyze", format_args!("replay failed: {e}")));
            if mode == "triage" {
                match analyze::triage(&recording, &case.spec.program) {
                    Ok(Some(t)) => println!("{t}"),
                    Ok(None) => println!("no races: the recording is happens-before clean"),
                    Err(e) => fail("analyze", format_args!("replay failed: {e}")),
                }
                return;
            }
            println!(
                "{}: {} racy address(es), {} racy pair(s), {} shared addr(s), {} sync addr(s), {} epochs",
                recording.meta.guest_name,
                report.races.len(),
                report.racy_pairs.len(),
                report.shared_addrs,
                report.sync_addrs,
                report.replay.epochs
            );
            for race in &report.races {
                println!("  {race}");
            }
            if o.assert_races && !report.is_racy() {
                fail("analyze", "--assert-races: no races found");
            }
            if o.assert_clean && report.is_racy() {
                fail(
                    "analyze",
                    format_args!("--assert-clean: {} race(s) found", report.races.len()),
                );
            }
        }
        "inspect" => {
            let recording = load_recording("analyze", path);
            let report = analyze::inspect(&recording)
                .unwrap_or_else(|e| fail("analyze", format_args!("inspect failed: {e}")));
            print!("{report}");
        }
        "diff" => {
            let Some(path_b) = argv.get(2) else { usage() };
            let a = load_recording("analyze", path);
            let b = load_recording("analyze", path_b);
            let d = analyze::diff(&a, &b);
            println!("{d}");
            if !d.identical() {
                exit(1);
            }
        }
        "compact" => {
            let o = parse_opts(&argv[2..]);
            let recording = load_recording("analyze", path);
            let (_, stats) = analyze::compact(&recording);
            println!("{stats}");
            let out_path = o.out.clone().unwrap_or_else(|| format!("{path}.dprz"));
            let mut buf = Vec::new();
            analyze::save_compact(&recording, &mut buf)
                .unwrap_or_else(|e| fail("analyze", format_args!("serialization failed: {e}")));
            write_atomic("analyze", &out_path, &buf);
            println!("wrote {out_path} ({} bytes)", buf.len());
            // With the workload at hand, prove the round trip.
            if o.workload.is_some() {
                let case = required_case("analyze", &o);
                let original = replay_sequential(&recording, &case.spec.program)
                    .unwrap_or_else(|e| fail("analyze", format_args!("replay failed: {e}")));
                let loaded = analyze::load_any(&buf)
                    .unwrap_or_else(|e| fail("analyze", format_args!("round trip failed: {e}")));
                let compacted =
                    replay_sequential(&loaded, &case.spec.program).unwrap_or_else(|e| {
                        fail("analyze", format_args!("round trip replay failed: {e}"))
                    });
                if compacted.final_hash != original.final_hash {
                    fail(
                        "analyze",
                        format_args!(
                            "round trip hash mismatch: {:#018x} vs {:#018x}",
                            compacted.final_hash, original.final_hash
                        ),
                    );
                }
                println!(
                    "round trip verified: final hash {:#018x}",
                    compacted.final_hash
                );
            }
        }
        _ => usage(),
    }
}

/// The session table both service paths print (in-process batch and
/// socket daemon), or its JSON twin via the shared
/// [`doubleplay::dpd::sessions_json`] formatter.
fn print_sessions(rows: &[doubleplay::dpd::SessionReport], notes: &[String], json: bool) {
    if json {
        println!("{}", doubleplay::dpd::sessions_json(rows, notes));
        return;
    }
    println!("  id     workload              prio    state      att  epochs  shards");
    for row in rows {
        println!(
            "  {:6} {:21} {:7} {:10} {:3} {:7} {:7}",
            row.id.to_string(),
            row.name,
            format!("{:?}", row.priority),
            format!("{:?}", row.state),
            row.attempts,
            row.epochs,
            row.journal_shards,
        );
    }
    for note in notes {
        println!("  note: {note}");
    }
}

/// `dp serve --socket PATH`: run `dpd` as a long-lived `dpnet` daemon.
/// Boot re-adopts every journal a previous incarnation left in `--dir`;
/// the accept loop then serves framed requests until a client sends
/// shutdown, after which in-flight sessions drain and the final table
/// prints.
fn cmd_serve_socket(o: &Opts, socket: &str) {
    use doubleplay::dpd::{serve, OrphanClass, ServerConfig};
    use std::sync::Arc;

    doubleplay::core::faults::silence_injected_panics();
    let store = Arc::new(
        DirStore::new(&o.dir)
            .unwrap_or_else(|e| fail("serve", format_args!("cannot create `{}`: {e}", o.dir))),
    );
    let mut dcfg = DaemonConfig {
        runners: o.runners.max(1),
        verify_cores: o.cores,
        queue_capacity: o.capacity.max(1),
        ..DaemonConfig::default()
    };
    if let Some(budget) = o.resume_budget {
        dcfg.resume_budget = budget;
    }
    let daemon = Arc::new(Daemon::start(dcfg, store));
    let orphans = daemon
        .adopt_orphans()
        .unwrap_or_else(|e| fail("serve", format_args!("cannot scan `{}`: {e}", o.dir)));
    for orphan in &orphans {
        let verdict = match &orphan.class {
            OrphanClass::Finalized { epochs } => format!("re-adopted, {epochs} epoch(s), clean"),
            OrphanClass::Salvageable { epochs, detail } => {
                format!("re-adopted, {epochs} epoch(s) salvaged ({detail})")
            }
            OrphanClass::Garbage { reason } => format!("garbage ({reason})"),
        };
        println!("orphan {}: {verdict}", orphan.name);
    }
    // --resume-adopted: spend the resume budget on the boot scan's
    // salvageable rows so they continue recording from their committed
    // prefixes instead of sitting terminal.
    if o.resume_adopted {
        for (id, outcome) in daemon.resume_adopted() {
            match outcome {
                Ok(from) => println!("resume {id}: continuing from epoch {from}"),
                Err(e) => println!("resume {id}: refused ({e})"),
            }
        }
    }
    println!("dpd serving on {socket} (journals in {}/)", o.dir);
    let cfg = ServerConfig {
        max_connections: o.conns.max(1),
        ..ServerConfig::default()
    };
    serve(&daemon, std::path::Path::new(socket), cfg)
        .unwrap_or_else(|e| fail("serve", format_args!("socket `{socket}`: {e}")));
    daemon.drain();
    print_sessions(&daemon.sessions(), &daemon.orphan_notes(), o.json);
    let m = daemon.metrics();
    println!(
        "shutdown: {} admitted ({} adopted, {} resumed), {} finalized, {} salvaged, {} failed, {} cancelled",
        m.admitted, m.adopted, m.resumed, m.finalized, m.salvaged, m.failed, m.cancelled
    );
    match Arc::try_unwrap(daemon) {
        Ok(d) => d.shutdown(),
        Err(_) => fail("serve", "connection thread still holds the daemon"),
    }
}

/// `dp serve`: run the `dpd` multi-session service over the mixed
/// workload suite, one `DPRJ` journal per session in `--dir`.
fn cmd_serve(o: &Opts) {
    use doubleplay::dpd::guests;
    use std::sync::Arc;

    if let Some(socket) = &o.socket {
        return cmd_serve_socket(o, socket);
    }

    doubleplay::core::faults::silence_injected_panics();
    let store = Arc::new(
        DirStore::new(&o.dir)
            .unwrap_or_else(|e| fail("serve", format_args!("cannot create `{}`: {e}", o.dir))),
    );
    let daemon = Daemon::start(
        DaemonConfig {
            runners: o.runners.max(1),
            verify_cores: o.cores,
            queue_capacity: o.capacity.max(1),
            ..DaemonConfig::default()
        },
        store.clone(),
    );

    let cases = mixed_suite(o.threads, o.size);
    let started = std::time::Instant::now();
    let mut ids = Vec::new();
    for i in 0..o.sessions {
        // Small-suite sizes record slowly per session; pad the tail of a
        // large batch with tiny service guests so `--sessions 200` stays a
        // service test, not a workload benchmark.
        let (name, guest) = if i < cases.len() {
            let case = &cases[i % cases.len()];
            (case.name.to_string(), case.spec.clone())
        } else if i.is_multiple_of(2) {
            (format!("tiny-atomic-{i}"), guests::atomic_counter(2, 400))
        } else {
            (format!("tiny-racy-{i}"), guests::racy_counter(2, 400))
        };
        let epoch = if i < cases.len() { 50_000 } else { 800 };
        let mut config = DoublePlayConfig::new(o.threads)
            .epoch_cycles(epoch)
            .hidden_seed(dp_support::rng::mix(&[o.seed, i as u64, 0x5e7e]));
        if i.is_multiple_of(2) {
            config = config.spare_workers(o.threads).pipelined(true);
        }
        if o.faults && i.is_multiple_of(3) {
            let template = FaultPlan::none()
                .seed(o.seed)
                .io(0.0, 0.002, 0.0)
                .worker_panics_with(0.005)
                .storms(0.05, 4, 32);
            config = config.faults(template.for_session(i as u64));
        }
        let mut spec = SessionSpec::new(name, guest, config)
            .priority(match i % 3 {
                0 => Priority::High,
                1 => Priority::Normal,
                _ => Priority::Low,
            })
            .restart_budget(2);
        if o.journal_shards >= 2 {
            spec = spec.journal_shards(o.journal_shards);
        }
        match daemon.submit_retrying(spec, 10_000) {
            Ok(id) => ids.push(id),
            Err(e) => fail("serve", format_args!("session {i} not admitted: {e}")),
        }
    }
    daemon.drain();
    let wall = started.elapsed();

    if o.json {
        print_sessions(&daemon.sessions(), &daemon.orphan_notes(), true);
    } else {
        println!("  id     workload              prio    state      att  epochs  journal");
        for row in daemon.sessions() {
            let journal = store
                .path(row.id)
                .or_else(|| store.shard_path(row.id, 0))
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "-".to_string());
            println!(
                "  {:6} {:21} {:7} {:10} {:3} {:7}  {}",
                row.id.to_string(),
                row.name,
                format!("{:?}", row.priority),
                format!("{:?}", row.state),
                row.attempts,
                row.epochs,
                journal
            );
        }
    }
    // With --json the session list is the whole (machine-readable) output.
    if !o.json {
        let m = daemon.metrics();
        println!(
            "served {} sessions in {:.1}s: {} finalized, {} salvaged, {} failed \
             ({} rejections shed, {} degraded runs, {} retries)",
            m.admitted,
            wall.as_secs_f64(),
            m.finalized,
            m.salvaged,
            m.failed,
            m.rejected,
            m.degraded_runs,
            m.retries
        );
        println!(
            "throughput {:.1} sessions/s, {} epochs committed, admission p50 {:.2}ms p99 {:.2}ms",
            m.admitted as f64 / wall.as_secs_f64(),
            m.epochs_committed,
            m.admission_p50_ns as f64 / 1e6,
            m.admission_p99_ns as f64 / 1e6
        );
        println!(
            "journals in {}/ — inspect with `dp sessions {}`",
            o.dir, o.dir
        );
    }
    daemon.shutdown();
}

/// The `--socket PATH` every client subcommand requires.
fn required_socket<'a>(cmd: &str, o: &'a Opts) -> &'a str {
    o.socket
        .as_deref()
        .unwrap_or_else(|| fail(cmd, "missing --socket PATH (the daemon's listening socket)"))
}

/// Connects to a serving daemon, turning every failure into a one-line
/// structured error.
fn connect(cmd: &str, socket: &str) -> doubleplay::dpd::Client {
    doubleplay::dpd::Client::connect(socket)
        .unwrap_or_else(|e| fail(cmd, format_args!("cannot connect to `{socket}`: {e}")))
}

/// Accepts a session id as `s0007` (the display form) or a bare number.
fn parse_session_id(cmd: &str, s: &str) -> doubleplay::dpd::SessionId {
    let digits = s.strip_prefix('s').unwrap_or(s);
    digits
        .parse()
        .map(doubleplay::dpd::SessionId)
        .unwrap_or_else(|_| fail(cmd, format_args!("`{s}` is not a session id (try s0001)")))
}

/// `dp submit <workload> --socket PATH`: open a recording session on a
/// remote daemon. The guest travels by name — the daemon resolves the
/// same workload locally, which is what keeps socket-submitted journals
/// byte-identical to in-process ones.
fn cmd_submit(name: &str, o: &Opts) {
    use doubleplay::dpd::{GuestRef, SizeRef, SubmitSpec};

    let socket = required_socket("submit", o);
    validate_worker_counts(o.threads, o.workers.unwrap_or(o.threads), o.pipelined)
        .unwrap_or_else(|e| fail("submit", e));
    let guest = GuestRef::Workload {
        name: name.to_string(),
        threads: o.threads as u64,
        size: SizeRef::from_size(o.size),
    };
    let mut config = DoublePlayConfig::new(o.threads)
        .epoch_cycles(o.epoch)
        .hidden_seed(o.seed)
        .pipelined(o.pipelined);
    if let Some(w) = o.workers {
        config = config.spare_workers(w);
    }
    let mut spec = SubmitSpec::new(name, guest, config);
    spec.priority = o.priority;
    if o.journal_shards >= 2 {
        spec.journal_shards = o.journal_shards;
    }
    let mut client = connect("submit", socket);
    let id = client
        .submit_retrying(&spec, 500)
        .unwrap_or_else(|e| fail("submit", e));
    println!("admitted {id}");
    if o.wait {
        let report = client.wait(id).unwrap_or_else(|e| fail("submit", e));
        println!(
            "{id}: {:?} after {} attempt(s), {} epoch(s){}",
            report.state,
            report.attempts,
            report.epochs,
            report
                .error
                .as_deref()
                .map(|e| format!(" — {e}"))
                .unwrap_or_default()
        );
    }
}

/// `dp resume <ID> --socket PATH`: ask a serving daemon to continue a
/// crashed (`Salvaged`) session from its committed journal prefix. The
/// daemon re-enacts the prefix deterministically and keeps recording;
/// refusals (wrong state, spent budget, unresolvable guest) come back
/// as one typed line.
fn cmd_resume(id_arg: &str, o: &Opts) {
    let socket = required_socket("resume", o);
    let id = parse_session_id("resume", id_arg);
    let mut client = connect("resume", socket);
    let from = client.resume(id).unwrap_or_else(|e| fail("resume", e));
    println!("{id}: resuming from epoch {from}");
    if o.wait {
        let report = client.wait(id).unwrap_or_else(|e| fail("resume", e));
        println!(
            "{id}: {:?} after {} attempt(s), {} epoch(s){}",
            report.state,
            report.attempts,
            report.epochs,
            report
                .error
                .as_deref()
                .map(|e| format!(" — {e}"))
                .unwrap_or_default()
        );
    }
}

/// `dp attach <ID> --socket PATH`: tail a session's journal live and
/// write the received bytes to `-o FILE` (default `<ID>.dprj`). If the
/// daemon dies mid-stream the prefix received so far is still written —
/// it is salvageable by construction (`dp salvage` recovers it).
fn cmd_attach(id_arg: &str, o: &Opts) {
    let socket = required_socket("attach", o);
    let id = parse_session_id("attach", id_arg);
    let out_path = o.out.clone().unwrap_or_else(|| format!("{id}.dprj"));
    let mut client = connect("attach", socket);
    let mut bytes = Vec::new();
    match client.attach(id, &mut bytes) {
        Ok(outcome) => {
            write_atomic("attach", &out_path, &bytes);
            println!(
                "{id}: {:?}, {} epoch(s), {} byte(s) in {} chunk(s){} — wrote {out_path}",
                outcome.state,
                outcome.epochs,
                outcome.bytes,
                outcome.chunks,
                if outcome.clean { "" } else { " (not clean)" },
            );
        }
        Err(e) => {
            // The severed prefix is a valid journal prefix: keep it.
            if !bytes.is_empty() {
                write_atomic("attach", &out_path, &bytes);
                eprintln!(
                    "note: kept {} byte(s) received before the failure in `{out_path}`; \
                     recover with `dp salvage {out_path}`",
                    bytes.len()
                );
            }
            fail("attach", e);
        }
    }
}

/// `dp shutdown --socket PATH`: ask the daemon to stop serving. The
/// daemon drains in-flight sessions after its accept loop exits.
fn cmd_shutdown(o: &Opts) {
    let socket = required_socket("shutdown", o);
    let mut client = connect("shutdown", socket);
    client.shutdown().unwrap_or_else(|e| fail("shutdown", e));
    println!("daemon on {socket} shutting down");
}

/// `dp sessions --socket PATH`: the live session table (or `--json`),
/// fetched from a serving daemon with the same formatter the in-process
/// paths use.
fn cmd_sessions_socket(o: &Opts) {
    let socket = required_socket("sessions", o);
    let mut client = connect("sessions", socket);
    let (rows, notes) = client.sessions().unwrap_or_else(|e| fail("sessions", e));
    print_sessions(&rows, &notes, o.json);
}

/// `dp sessions <DIR>`: salvage every `.dprj` journal in a serve
/// directory independently, and merge every `.s<K>.dprs` shard set to
/// its longest consistent cross-shard prefix — the post-mortem view
/// after a daemon crash.
fn cmd_sessions(dir: &str) {
    let entries = std::fs::read_dir(dir)
        .unwrap_or_else(|e| fail("sessions", format_args!("cannot read `{dir}`: {e}")));
    let mut paths = Vec::new();
    let mut shard_bases = std::collections::BTreeSet::new();
    for path in entries.filter_map(|e| e.ok().map(|e| e.path())) {
        match path.extension() {
            Some(x) if x == "dprj" => paths.push(path),
            Some(x) if x == "dprs" => {
                // `NAME.s<K>.dprs` — one row per NAME, not per shard.
                let s = path.display().to_string();
                if let Some(base) = s.strip_suffix(".dprs").and_then(shard_base) {
                    shard_bases.insert(base.to_string());
                }
            }
            _ => {}
        }
    }
    paths.sort();
    if paths.is_empty() && shard_bases.is_empty() {
        fail(
            "sessions",
            format_args!("no .dprj journals or .dprs shard sets in `{dir}`"),
        );
    }
    println!("  journal                                   epochs   salvaged    dropped  status");
    let mut total = 0usize;
    let mut recovered = 0usize;
    for path in &paths {
        total += 1;
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                println!("  {name:40} unreadable: {e}");
                continue;
            }
        };
        match JournalReader::salvage(&bytes) {
            Ok(s) => {
                recovered += 1;
                let status = if s.clean { "clean" } else { &*s.detail };
                println!(
                    "  {:40} {:6} {:10} {:10}  {}",
                    name,
                    s.committed(),
                    s.salvaged_bytes,
                    s.dropped_bytes,
                    status
                );
            }
            Err(e) => println!("  {name:40} unsalvageable: {e}"),
        }
    }
    for base in &shard_bases {
        total += 1;
        let mut bufs = Vec::new();
        loop {
            let p = format!("{base}.s{}.dprs", bufs.len());
            match std::fs::read(&p) {
                Ok(b) => bufs.push(b),
                Err(_) => break,
            }
        }
        let name = format!(
            "{}.s*",
            std::path::Path::new(base)
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
        );
        if bufs.is_empty() {
            println!("  {name:40} shard 0 unreadable");
            continue;
        }
        match JournalReader::salvage_shards(&bufs) {
            Ok(s) => {
                recovered += 1;
                let status = if s.clean { "clean" } else { &*s.detail };
                println!(
                    "  {:40} {:6} {:10} {:10}  {}",
                    name,
                    s.committed(),
                    s.salvaged_bytes,
                    s.dropped_bytes,
                    status
                );
            }
            Err(e) => println!("  {name:40} unsalvageable: {e}"),
        }
    }
    println!("{recovered}/{total} journals recovered independently");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "list" => {
            for c in suite(2, Size::Small)
                .iter()
                .chain(racy_suite(2, Size::Small).iter())
            {
                println!("{:16} {}", c.name, c.category);
            }
        }
        "record" => {
            let Some(name) = argv.get(1) else { usage() };
            let o = parse_opts(&argv[2..]);
            // Degenerate worker counts (`--threads 0`, `--pipelined
            // --workers 0`, absurd worker requests) are typed errors, not
            // panics — checked before `DoublePlayConfig::new`, whose
            // assertion is for programmer errors, not CLI input.
            validate_worker_counts(o.threads, o.workers.unwrap_or(o.threads), o.pipelined)
                .unwrap_or_else(|e| fail("record", e));
            let case = find_case(name, o.threads, o.size);
            let mut config = DoublePlayConfig::new(o.threads)
                .epoch_cycles(o.epoch)
                .hidden_seed(o.seed)
                .pipelined(o.pipelined);
            if let Some(w) = o.workers {
                config = config.spare_workers(w);
            }
            // With --journal, every committed epoch streams to the journal
            // file as it happens; a crash mid-run leaves a salvageable
            // prefix instead of nothing. The journal is written in place
            // (it IS the incremental artifact); the final recording below
            // is still written atomically. With --journal-shards N, the
            // stream splits across `FILE.s0`..`FILE.s{N-1}` shard lanes
            // that group-commit their flushes.
            if o.journal_shards >= 2 && o.journal.is_none() {
                fail("record", "--journal-shards requires --journal FILE");
            }
            let result = match &o.journal {
                Some(jpath) if o.journal_shards >= 2 => {
                    let shards = o.journal_shards;
                    let writers: Vec<_> = (0..shards)
                        .map(|k| {
                            let p = format!("{jpath}.s{k}");
                            let file = std::fs::File::create(&p).unwrap_or_else(|e| {
                                fail("record", format_args!("cannot create `{p}`: {e}"))
                            });
                            std::io::BufWriter::new(file)
                        })
                        .collect();
                    let mut sink = ShardedJournalWriter::threaded(writers, DEFAULT_SHARD_BATCH)
                        .unwrap_or_else(|e| {
                            fail("record", format_args!("cannot write `{jpath}.s0`: {e}"))
                        });
                    let r = record_to(&case.spec, &config, &mut sink);
                    let flushes = sink.flushes();
                    let epochs = sink.epochs_committed();
                    let lanes = sink.into_writers();
                    match (&r, lanes) {
                        (Ok(_), Err(e)) => {
                            fail("record", format_args!("journal shard lane failed: {e}"))
                        }
                        (Err(_), _) => eprintln!(
                            "note: shard journals `{jpath}.s0`..`{jpath}.s{}` retain every \
                             consistent epoch; recover with `dp salvage {jpath}.s0`",
                            shards - 1
                        ),
                        (Ok(_), Ok(_)) => println!(
                            "journal {jpath}.s0..s{}: {epochs} epoch(s) across {shards} \
                             shard(s), {flushes} group-committed flush(es)",
                            shards - 1
                        ),
                    }
                    r
                }
                Some(jpath) => {
                    let file = std::fs::File::create(jpath).unwrap_or_else(|e| {
                        fail("record", format_args!("cannot create `{jpath}`: {e}"))
                    });
                    let mut sink = JournalWriter::new(std::io::BufWriter::new(file))
                        .unwrap_or_else(|e| {
                            fail("record", format_args!("cannot write `{jpath}`: {e}"))
                        });
                    let r = record_to(&case.spec, &config, &mut sink);
                    if r.is_err() {
                        eprintln!(
                            "note: journal `{jpath}` retains every committed epoch; \
                             recover with `dp salvage {jpath}`"
                        );
                    }
                    r
                }
                None => record(&case.spec, &config),
            };
            let bundle = match result {
                Ok(b) => b,
                Err(e) => fail("record", e),
            };
            let s = &bundle.stats;
            println!(
                "{name}: {} epochs, {} divergences, overhead {:.1}%, log {} B",
                s.epochs,
                s.divergences,
                s.overhead() * 100.0,
                s.log_bytes()
            );
            println!(
                "hashing: {} page(s) hashed, {} skipped by the incremental digest cache",
                s.hashed_pages, s.hash_skipped_pages
            );
            if s.wall.pipelined {
                println!(
                    "wall {:.1} ms, {} verify workers at {:.0}% utilization, {} speculative epoch(s) cancelled",
                    s.wall.wall_ns as f64 / 1e6,
                    s.wall.workers,
                    s.wall.utilization() * 100.0,
                    s.wall.cancelled_epochs
                );
            } else {
                println!(
                    "wall {:.1} ms (sequential driver)",
                    s.wall.wall_ns as f64 / 1e6
                );
            }
            if let Some(jpath) = &o.journal {
                if o.journal_shards < 2 {
                    println!("journal {jpath} finalized");
                }
            }
            let path = o.out.unwrap_or_else(|| format!("{name}.dprec"));
            let mut buf = Vec::new();
            bundle
                .recording
                .save(&mut buf)
                .unwrap_or_else(|e| fail("record", format_args!("cannot serialize: {e}")));
            write_atomic("record", &path, &buf);
            println!("wrote {path}");
        }
        "salvage" => {
            let Some(path) = argv.get(1) else { usage() };
            let o = parse_opts(&argv[2..]);
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| fail("salvage", format_args!("cannot read `{path}`: {e}")));
            // A DPRS shard stream names its siblings: `BASE.s0`..`BASE.s*`.
            // Gather them all and reconstruct the longest consistent
            // cross-shard prefix; a classic DPRJ file salvages alone.
            let (recording, out_default) = if bytes.starts_with(&SHARD_MAGIC) {
                let Some(base) = shard_base(path) else {
                    fail(
                        "salvage",
                        format_args!(
                            "`{path}` is a DPRS shard stream but is not named `BASE.s<K>`; \
                             restore the shard set's `BASE.s0`..`BASE.s<N-1>` names"
                        ),
                    );
                };
                let mut bufs = Vec::new();
                loop {
                    let p = format!("{base}.s{}", bufs.len());
                    match std::fs::read(&p) {
                        Ok(b) => bufs.push(b),
                        Err(_) => break,
                    }
                }
                if bufs.is_empty() {
                    fail("salvage", format_args!("cannot read `{base}.s0`"));
                }
                let salvaged = JournalReader::salvage_shards(&bufs).unwrap_or_else(|e| {
                    fail(
                        "salvage",
                        format_args!("cannot salvage shard set `{base}.s*`: {e}"),
                    )
                });
                println!(
                    "{base}.s0..s{}: {} committed epoch(s) across {} shard(s), \
                     {} bytes salvaged, {} bytes dropped, \
                     {} durable-but-inconsistent epoch(s) ({})",
                    bufs.len() - 1,
                    salvaged.committed(),
                    salvaged.shard_count,
                    salvaged.salvaged_bytes,
                    salvaged.dropped_bytes,
                    salvaged.dropped_epochs,
                    salvaged.detail
                );
                (salvaged.recording, format!("{base}.dprec"))
            } else {
                let salvaged = JournalReader::salvage(&bytes).unwrap_or_else(|e| {
                    fail("salvage", format_args!("cannot salvage `{path}`: {e}"))
                });
                println!(
                    "{path}: {} committed epoch(s), {} bytes salvaged, {} bytes dropped ({})",
                    salvaged.committed(),
                    salvaged.salvaged_bytes,
                    salvaged.dropped_bytes,
                    salvaged.detail
                );
                (salvaged.recording, format!("{path}.dprec"))
            };
            let out = o.out.unwrap_or(out_default);
            let mut buf = Vec::new();
            recording
                .save(&mut buf)
                .unwrap_or_else(|e| fail("salvage", format_args!("cannot serialize: {e}")));
            write_atomic("salvage", &out, &buf);
            println!("wrote {out} ({} bytes)", buf.len());
        }
        "replay" => {
            let Some(path) = argv.get(1) else { usage() };
            let o = parse_opts(&argv[2..]);
            let case = required_case("replay", &o);
            let recording = load_recording("replay", path);
            let result = if o.parallel > 1 {
                replay_parallel(&recording, &case.spec.program, o.parallel)
            } else {
                replay_sequential(&recording, &case.spec.program)
            };
            match result {
                Ok(report) => println!(
                    "replayed {} epochs, {} instructions, exit {:?} — verified",
                    report.epochs, report.instructions, report.exit_code
                ),
                Err(e) => fail("replay", e),
            }
        }
        "serve" => cmd_serve(&parse_opts(&argv[1..])),
        "submit" => {
            let Some(name) = argv.get(1) else { usage() };
            cmd_submit(name, &parse_opts(&argv[2..]));
        }
        "resume" => {
            let Some(id) = argv.get(1) else { usage() };
            cmd_resume(id, &parse_opts(&argv[2..]));
        }
        "attach" => {
            let Some(id) = argv.get(1) else { usage() };
            cmd_attach(id, &parse_opts(&argv[2..]));
        }
        "shutdown" => cmd_shutdown(&parse_opts(&argv[1..])),
        "sessions" => {
            let Some(first) = argv.get(1) else { usage() };
            if first.starts_with("--") {
                cmd_sessions_socket(&parse_opts(&argv[1..]));
            } else {
                cmd_sessions(first);
            }
        }
        "analyze" => cmd_analyze(&argv[1..]),
        "inspect" => {
            let Some(path) = argv.get(1) else { usage() };
            let r = load_recording("inspect", path);
            println!("guest:         {}", r.meta.guest_name);
            println!("program hash:  {:#018x}", r.meta.program_hash);
            println!(
                "config:        {} cpus, epoch {} cycles",
                r.meta.config.cpus, r.meta.config.epoch_cycles
            );
            println!("epochs:        {}", r.epochs.len());
            println!(
                "checkpoints:   {}",
                if r.has_checkpoints() {
                    "per-epoch (parallel replay ok)"
                } else {
                    "initial only"
                }
            );
            println!(
                "schedule:      {} events, {} bytes",
                r.schedule_events(),
                r.schedule_bytes()
            );
            println!(
                "syscall log:   {} entries, {} bytes",
                r.logged_syscalls(),
                r.syscall_bytes()
            );
            let ext: u64 = r.external().map(|c| c.bytes.len() as u64).sum();
            println!("external out:  {ext} bytes");
            for e in r.epochs.iter().take(5) {
                println!(
                    "  epoch {:3}: {:6} sched events, {:5} syscalls, end hash {:#018x}",
                    e.index,
                    e.schedule.len(),
                    e.syscalls.len(),
                    e.end_machine_hash
                );
            }
            if r.epochs.len() > 5 {
                println!("  ... {} more", r.epochs.len() - 5);
            }
        }
        _ => usage(),
    }
}
