//! `dp` — command-line record/replay for the bundled workloads.
//!
//! ```text
//! dp record <workload> [--threads N] [--size small|medium|large]
//!           [--epoch CYCLES] [--seed S] [--out FILE]
//! dp replay <FILE> --workload <workload> [--threads N] [--size ...] [--parallel N]
//! dp inspect <FILE>
//! dp list
//! ```
//!
//! The workload name selects the guest program; `replay` and `inspect`
//! need it again (with the same parameters) because recordings carry only
//! a program hash, not the program itself.

use doubleplay::prelude::*;
use doubleplay::workloads::{racy_suite, suite};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  dp list\n  dp record <workload> [--threads N] [--size S] [--epoch C] [--seed X] [--out FILE]\n  dp replay <FILE> --workload <name> [--threads N] [--size S] [--parallel N]\n  dp inspect <FILE>"
    );
    exit(2);
}

fn parse_size(s: &str) -> Size {
    match s {
        "small" => Size::Small,
        "medium" => Size::Medium,
        "large" => Size::Large,
        _ => usage(),
    }
}

struct Opts {
    threads: usize,
    size: Size,
    epoch: u64,
    seed: u64,
    out: Option<String>,
    workload: Option<String>,
    parallel: usize,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        threads: 2,
        size: Size::Small,
        epoch: 200_000,
        seed: DoublePlayConfig::new(2).hidden_seed,
        out: None,
        workload: None,
        parallel: 0,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--threads" => o.threads = val().parse().unwrap_or_else(|_| usage()),
            "--size" => o.size = parse_size(&val()),
            "--epoch" => o.epoch = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| usage()),
            "--out" => o.out = Some(val()),
            "--workload" => o.workload = Some(val()),
            "--parallel" => o.parallel = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    o
}

fn find_case(name: &str, threads: usize, size: Size) -> WorkloadCase {
    suite(threads, size)
        .into_iter()
        .chain(racy_suite(threads, size))
        .find(|c| c.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload `{name}` (try `dp list`)");
            exit(2);
        })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "list" => {
            for c in suite(2, Size::Small)
                .iter()
                .chain(racy_suite(2, Size::Small).iter())
            {
                println!("{:16} {}", c.name, c.category);
            }
        }
        "record" => {
            let Some(name) = argv.get(1) else { usage() };
            let o = parse_opts(&argv[2..]);
            let case = find_case(name, o.threads, o.size);
            let config = DoublePlayConfig::new(o.threads)
                .epoch_cycles(o.epoch)
                .hidden_seed(o.seed);
            let bundle = match record(&case.spec, &config) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("record failed: {e}");
                    exit(1);
                }
            };
            let s = &bundle.stats;
            println!(
                "{name}: {} epochs, {} divergences, overhead {:.1}%, log {} B",
                s.epochs,
                s.divergences,
                s.overhead() * 100.0,
                s.log_bytes()
            );
            let path = o.out.unwrap_or_else(|| format!("{name}.dprec"));
            let file = std::fs::File::create(&path).expect("cannot create output file");
            bundle.recording.save(file).expect("serialization failed");
            println!("wrote {path}");
        }
        "replay" => {
            let Some(path) = argv.get(1) else { usage() };
            let o = parse_opts(&argv[2..]);
            let Some(name) = o.workload else { usage() };
            let case = find_case(&name, o.threads, o.size);
            let file = std::fs::File::open(path).expect("cannot open recording");
            let recording = match Recording::load(file) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cannot parse recording: {e}");
                    exit(1);
                }
            };
            let result = if o.parallel > 1 {
                replay_parallel(&recording, &case.spec.program, o.parallel)
            } else {
                replay_sequential(&recording, &case.spec.program)
            };
            match result {
                Ok(report) => println!(
                    "replayed {} epochs, {} instructions, exit {:?} — verified",
                    report.epochs, report.instructions, report.exit_code
                ),
                Err(e) => {
                    eprintln!("replay FAILED: {e}");
                    exit(1);
                }
            }
        }
        "inspect" => {
            let Some(path) = argv.get(1) else { usage() };
            let file = std::fs::File::open(path).expect("cannot open recording");
            let r = match Recording::load(file) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cannot parse recording: {e}");
                    exit(1);
                }
            };
            println!("guest:         {}", r.meta.guest_name);
            println!("program hash:  {:#018x}", r.meta.program_hash);
            println!(
                "config:        {} cpus, epoch {} cycles",
                r.meta.config.cpus, r.meta.config.epoch_cycles
            );
            println!("epochs:        {}", r.epochs.len());
            println!(
                "checkpoints:   {}",
                if r.has_checkpoints() {
                    "per-epoch (parallel replay ok)"
                } else {
                    "initial only"
                }
            );
            println!(
                "schedule:      {} events, {} bytes",
                r.schedule_events(),
                r.schedule_bytes()
            );
            println!(
                "syscall log:   {} entries, {} bytes",
                r.logged_syscalls(),
                r.syscall_bytes()
            );
            let ext: u64 = r.external().map(|c| c.bytes.len() as u64).sum();
            println!("external out:  {ext} bytes");
            for e in r.epochs.iter().take(5) {
                println!(
                    "  epoch {:3}: {:6} sched events, {:5} syscalls, end hash {:#018x}",
                    e.index,
                    e.schedule.len(),
                    e.syscalls.len(),
                    e.end_machine_hash
                );
            }
            if r.epochs.len() > 5 {
                println!("  ... {} more", r.epochs.len() - 5);
            }
        }
        _ => usage(),
    }
}
