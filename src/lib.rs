//! # doubleplay — uniparallel deterministic record/replay
//!
//! The facade crate of the DoublePlay (ASPLOS 2011) reproduction: a full
//! record/replay stack for multithreaded guest programs, built on
//! uniparallelism. Re-exports the layered crates:
//!
//! * [`vm`] — the deterministic multithreaded bytecode VM substrate;
//! * [`os`] — the simulated kernel (filesystem, sockets, futexes, signals,
//!   speculative output, cost model);
//! * [`core`] — DoublePlay itself: the uniparallel recorder, divergence
//!   detection with forward recovery, and sequential/parallel replay;
//! * [`analyze`] — offline analysis of saved recordings: vector-clock
//!   data-race detection, divergence triage, inspection/diffing, and
//!   lossless log compaction;
//! * [`baselines`] — conventional multiprocessor record/replay schemes for
//!   comparison;
//! * [`workloads`] — the paper-style benchmark suite;
//! * [`dpd`] — the supervised multi-session recording service: admission
//!   control with typed backpressure, a shared verify-core pool with
//!   graceful degradation, per-session fault isolation, and per-session
//!   crash-consistent journals.
//!
//! ## Record and replay in five lines
//!
//! ```
//! use doubleplay::prelude::*;
//!
//! let case = doubleplay::workloads::pfscan::build(2, Size::Small);
//! let bundle = record(&case.spec, &DoublePlayConfig::new(2))?;
//! let report = replay_sequential(&bundle.recording, &case.spec.program)?;
//! assert_eq!(report.epochs as u64, bundle.stats.epochs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Recording under injected faults
//!
//! A seeded [`core::FaultPlan`] deterministically injects syscall I/O
//! faults, epoch-worker panics, and divergence storms; fault decisions
//! are pure hashes of execution coordinates, so the recording still
//! replays bit-exactly:
//!
//! ```
//! use doubleplay::prelude::*;
//!
//! let plan = FaultPlan::none()
//!     .seed(42)
//!     .io(0.0, 0.01, 0.0)       // fail_p, short_read_p, reset_p
//!     .worker_panics_with(0.01) // panics inside verify workers; retried
//!     .storms(0.05, 4, 64);     // p, window length, jitter amplification
//! doubleplay::core::faults::silence_injected_panics();
//! let case = doubleplay::workloads::aget::build(2, Size::Small);
//! let bundle = record(&case.spec, &DoublePlayConfig::new(2).faults(plan))?;
//! let report = replay_sequential(&bundle.recording, &case.spec.program)?;
//! assert_eq!(report.epochs as u64, bundle.stats.epochs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use dp_analyze as analyze;
pub use dp_baselines as baselines;
pub use dp_core as core;
pub use dp_dpd as dpd;
pub use dp_os as os;
pub use dp_vm as vm;
pub use dp_workloads as workloads;

/// The commonly-used surface in one import.
pub mod prelude {
    pub use dp_core::{
        measure_native, record, record_to, replay_parallel, replay_sequential, replay_to_point,
        validate_worker_counts, ConfigError, DoublePlayConfig, FaultPlan, GuestSpec, JournalReader,
        JournalWriter, RecordError, RecorderStats, Recording, RecordingBundle, ReplayError,
        Salvaged, SaveError, ShardSalvaged, ShardedJournalWriter, DEFAULT_SHARD_BATCH, SHARD_MAGIC,
    };
    pub use dp_dpd::{
        AdmitError, Daemon, DaemonConfig, DirStore, MemStore, Priority, SessionSpec, SessionState,
        SessionStore,
    };
    pub use dp_workloads::{mixed_suite, racy_suite, suite, Size, WorkloadCase};
}
