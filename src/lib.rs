//! # doubleplay — uniparallel deterministic record/replay
//!
//! The facade crate of the DoublePlay (ASPLOS 2011) reproduction: a full
//! record/replay stack for multithreaded guest programs, built on
//! uniparallelism. Re-exports the layered crates:
//!
//! * [`vm`] — the deterministic multithreaded bytecode VM substrate;
//! * [`os`] — the simulated kernel (filesystem, sockets, futexes, signals,
//!   speculative output, cost model);
//! * [`core`] — DoublePlay itself: the uniparallel recorder, divergence
//!   detection with forward recovery, and sequential/parallel replay;
//! * [`baselines`] — conventional multiprocessor record/replay schemes for
//!   comparison;
//! * [`workloads`] — the paper-style benchmark suite.
//!
//! ## Record and replay in five lines
//!
//! ```
//! use doubleplay::prelude::*;
//!
//! let case = doubleplay::workloads::pfscan::build(2, Size::Small);
//! let bundle = record(&case.spec, &DoublePlayConfig::new(2))?;
//! let report = replay_sequential(&bundle.recording, &case.spec.program)?;
//! assert_eq!(report.epochs as u64, bundle.stats.epochs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use dp_baselines as baselines;
pub use dp_core as core;
pub use dp_os as os;
pub use dp_vm as vm;
pub use dp_workloads as workloads;

/// The commonly-used surface in one import.
pub mod prelude {
    pub use dp_core::{
        measure_native, record, replay_parallel, replay_sequential, replay_to_point,
        DoublePlayConfig, GuestSpec, RecorderStats, Recording, RecordingBundle,
    };
    pub use dp_workloads::{racy_suite, suite, Size, WorkloadCase};
}
