//! Recording a server: the Apache-style workload with scripted clients
//! arriving over time. Demonstrates speculative external output (responses
//! are only released when their epoch commits), recording persistence to
//! disk, crash-consistent journaling with salvage, and replay from the
//! loaded artifact.
//!
//! ```sh
//! cargo run --release --example server_recording
//! ```

use doubleplay::prelude::*;
use doubleplay::workloads::webserve;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case = webserve::build(2, Size::Small);
    let config = DoublePlayConfig::new(2).epoch_cycles(150_000);

    // Record while streaming every committed epoch into a DPRJ journal:
    // if this process dies mid-run, the journal retains the committed
    // prefix instead of losing everything.
    let jpath = std::env::temp_dir().join("webserve.dprj");
    let mut journal = JournalWriter::new(std::io::BufWriter::new(std::fs::File::create(&jpath)?))?;
    let bundle = record_to(&case.spec, &config, &mut journal)?;
    drop(journal);
    let stats = &bundle.stats;
    println!(
        "served requests under recording: {} epochs, overhead {:.1}%",
        stats.epochs,
        stats.overhead() * 100.0
    );

    // External output (the responses) was buffered speculatively and
    // released epoch by epoch as they committed.
    let sent: u64 = bundle
        .recording
        .external()
        .map(|c| c.bytes.len() as u64)
        .sum();
    println!(
        "external output committed: {sent} bytes across {} chunks (expected {:?})",
        bundle.recording.external().count(),
        case.expected_external_bytes
    );
    assert_eq!(Some(sent), case.expected_external_bytes);

    // Persist the recording and reload it — the artifact a bug report
    // would attach.
    let path = std::env::temp_dir().join("webserve.dprec");
    bundle.recording.save(std::fs::File::create(&path)?)?;
    let loaded = Recording::load(std::fs::File::open(&path)?)?;
    println!(
        "saved {} KiB recording to {}",
        std::fs::metadata(&path)?.len() / 1024,
        path.display()
    );

    // Replay from the loaded artifact and verify the server behaved
    // identically: same epochs, same final state.
    let report = replay_sequential(&loaded, &case.spec.program)?;
    println!(
        "replayed {} epochs from disk; server exit code {:?}",
        report.epochs, report.exit_code
    );
    assert_eq!(report.epochs as u64, stats.epochs);

    // Simulate a crash of the recording machine: truncate the journal at
    // an arbitrary byte (here 80%, landing mid-frame) and salvage. The
    // commit rule guarantees we recover exactly the epochs whose commit
    // markers reached the disk — each one bit-identical to the real run.
    let journal_bytes = std::fs::read(&jpath)?;
    let torn = &journal_bytes[..journal_bytes.len() * 8 / 10];
    let salvaged = JournalReader::salvage(torn)?;
    println!(
        "crash at byte {}: salvaged {}/{} committed epochs ({} bytes dropped: {})",
        torn.len(),
        salvaged.committed(),
        bundle.recording.epochs.len(),
        salvaged.dropped_bytes,
        salvaged.detail
    );
    let partial = replay_sequential(&salvaged.recording, &case.spec.program)?;
    let k = salvaged.committed();
    assert_eq!(partial.epochs as usize, k);
    assert_eq!(
        partial.final_hash,
        bundle.recording.epochs[k - 1].end_machine_hash,
        "salvaged prefix must replay to the recorded state"
    );
    println!("salvaged prefix replayed and verified ({k} epochs)");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&jpath).ok();
    Ok(())
}
