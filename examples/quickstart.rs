//! Quickstart: build a tiny multithreaded guest, record it with
//! DoublePlay, inspect the recording, and replay it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use doubleplay::os::guest::Rt;
use doubleplay::os::{abi, kernel::WorldConfig};
use doubleplay::prelude::*;
use doubleplay::vm::builder::ProgramBuilder;
use doubleplay::vm::Reg;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A guest program: three threads each add 10_000 to a shared counter
    // under a futex-based mutex, then main prints and exits with the total.
    let mut pb = ProgramBuilder::new();
    let rt = Rt::install(&mut pb);
    let lock = pb.global("lock", 8);
    let counter = pb.global("counter", 8);

    let mut w = pb.function("worker");
    let top = w.label();
    let done = w.label();
    w.consti(Reg(10), 0);
    w.bind(top);
    w.bin(doubleplay::vm::BinOp::Ltu, Reg(11), Reg(10), 10_000i64);
    w.jz(Reg(11), done);
    w.consti(Reg(0), lock as i64);
    w.call(rt.mutex_lock);
    w.consti(Reg(12), counter as i64);
    w.load(Reg(13), Reg(12), 0, doubleplay::vm::Width::W8);
    w.add(Reg(13), Reg(13), 1i64);
    w.store(Reg(13), Reg(12), 0, doubleplay::vm::Width::W8);
    w.consti(Reg(0), lock as i64);
    w.call(rt.mutex_unlock);
    w.add(Reg(10), Reg(10), 1i64);
    w.jmp(top);
    w.bind(done);
    w.consti(Reg(0), 0);
    w.syscall(abi::SYS_THREAD_EXIT);
    w.finish();
    let worker = pb.declare("worker");

    let mut f = pb.function("main");
    for _ in 0..3 {
        f.consti(Reg(0), worker.0 as i64);
        f.consti(Reg(1), 0);
        f.consti(Reg(2), 0);
        f.syscall(abi::SYS_SPAWN);
    }
    for t in 1..=3 {
        f.consti(Reg(0), t);
        f.syscall(abi::SYS_JOIN);
    }
    f.consti(Reg(9), counter as i64);
    f.load(Reg(0), Reg(9), 0, doubleplay::vm::Width::W8);
    f.call(rt.print_u64);
    f.consti(Reg(9), counter as i64);
    f.load(Reg(0), Reg(9), 0, doubleplay::vm::Width::W8);
    f.syscall(abi::SYS_EXIT);
    f.finish();

    let spec = GuestSpec::new(
        "quickstart",
        Arc::new(pb.finish("main")),
        WorldConfig::default(),
    );

    // Record with 2 worker CPUs and 2 spare cores (the paper's setup).
    let config = DoublePlayConfig::new(2).epoch_cycles(100_000);
    let bundle = record(&spec, &config)?;
    let stats = &bundle.stats;
    println!(
        "recorded {} epochs ({} divergences)",
        stats.epochs, stats.divergences
    );
    println!(
        "native {} cycles, recorded {} cycles -> overhead {:.1}%",
        stats.native_cycles,
        stats.recorded_cycles,
        stats.overhead() * 100.0
    );
    println!(
        "log: {} schedule bytes + {} syscall bytes",
        stats.schedule_bytes, stats.syscall_bytes
    );
    println!(
        "console output committed by the recording: {:?}",
        String::from_utf8_lossy(&bundle.recording.console_output())
    );

    // Replay — sequentially, and in parallel across real OS threads.
    let seq = replay_sequential(&bundle.recording, &spec.program)?;
    println!("sequential replay: exit code {:?}", seq.exit_code);
    assert_eq!(seq.exit_code, Some(30_000));
    let par = replay_parallel(&bundle.recording, &spec.program, 4)?;
    assert_eq!(par.final_hash, seq.final_hash);
    println!("parallel replay across 4 threads reproduced the same state");
    Ok(())
}
