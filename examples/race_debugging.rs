//! Race debugging with deterministic replay — the paper's motivating use
//! case. A racy program loses updates nondeterministically; re-running it
//! gives a different answer every time, but a DoublePlay recording pins
//! one execution down forever, and `replay_to_point` lets you inspect the
//! state at any (epoch, thread, instruction) coordinate — like a
//! time-travel debugger.
//!
//! ```sh
//! cargo run --release --example race_debugging
//! ```

use doubleplay::prelude::*;
use doubleplay::vm::Tid;
use doubleplay::workloads::racey;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An unsynchronized counter: two threads, 4000 increments each,
    // fine-grained interleaving. The "bug": the total is < 8000.
    // Small quanta make interleavings fine-grained enough for the race to
    // fire (both in the hidden thread-parallel interleaver and in the
    // single-CPU re-execution that becomes the record after a divergence).
    let config = DoublePlayConfig {
        tp_quantum: 300,
        tp_jitter: 400,
        ..DoublePlayConfig::new(2).epoch_cycles(50_000).ep_quantum(13)
    };

    // Re-running natively gives different answers run to run (different
    // hidden seeds = different hardware interleavings).
    println!("native runs (different interleavings):");
    for seed in 0..3 {
        let case = racey::counter(2, Size::Small);
        let native = DoublePlayConfig {
            hidden_seed: seed,
            ..config
        };
        let bundle = record(&case.spec, &native)?;
        let report = replay_sequential(&bundle.recording, &case.spec.program)?;
        println!(
            "  seed {seed}: counter = {:?} ({} divergences recovered while recording)",
            report.exit_code, bundle.stats.divergences
        );
    }

    // Pick an execution where the bug manifests (some seed loses updates)
    // and pin it down.
    let (bundle, case, buggy) = (0..64)
        .find_map(|seed| {
            let case = racey::counter(2, Size::Small);
            let cfg = DoublePlayConfig {
                hidden_seed: 0xbad + seed,
                ..config
            };
            let bundle = record(&case.spec, &cfg).ok()?;
            let got = replay_sequential(&bundle.recording, &case.spec.program)
                .ok()?
                .exit_code?;
            (got < 8000).then_some((bundle, case, got))
        })
        .expect("no seed manifested the race");
    println!(
        "\nrecorded execution: counter = {buggy} (lost {})",
        8000 - buggy
    );

    // Deterministic: every replay gives the same answer.
    for _ in 0..3 {
        let again = replay_sequential(&bundle.recording, &case.spec.program)?;
        assert_eq!(again.exit_code, Some(buggy));
    }
    println!("replayed 3x: identical every time");

    // Time travel: watch the shared counter evolve inside epoch 0 as
    // thread 1 executes, exactly as it did during the recorded run.
    let counter_addr = case.spec.program.symbol("counter").unwrap();
    println!("\ntime-travel through epoch 0 (thread 1's view):");
    for icount in [0u64, 200, 400, 800, 1600] {
        let machine = replay_to_point(&bundle.recording, &case.spec.program, 0, Tid(1), icount)?;
        println!(
            "  t1@{:5} instructions: counter = {}",
            machine.thread(Tid(1)).icount,
            machine.mem().read(counter_addr, doubleplay::vm::Width::W8)
        );
    }
    println!("\nthe interleaving that lost the updates is now reproducible at will");
    Ok(())
}
