//! End-to-end integration: record every workload in the suite under
//! DoublePlay, verify the application still behaves correctly (via each
//! workload's ground-truth verifier applied to the replayed final state),
//! and check that sequential and parallel replay reproduce the recording
//! exactly.

use doubleplay::prelude::*;
use dp_core::checkpoint::Checkpoint;

fn record_and_replay(case: &WorkloadCase, cpus: usize) {
    let config = DoublePlayConfig::new(cpus).epoch_cycles(120_000);
    let bundle =
        record(&case.spec, &config).unwrap_or_else(|e| panic!("{}: record failed: {e}", case.name));
    let stats = &bundle.stats;
    assert!(stats.epochs > 0, "{}: no epochs", case.name);
    assert_eq!(
        stats.committed + stats.divergences,
        stats.epochs,
        "{}: epoch accounting broken",
        case.name
    );

    // Sequential replay must verify every epoch and reproduce the final
    // application state; the workload verifier then checks ground truth.
    let initial =
        Checkpoint::from_image(case.spec.program.clone(), bundle.recording.initial.clone());
    let mut state = (initial.machine, initial.kernel);
    for epoch in &bundle.recording.epochs {
        let start = Checkpoint::capture(&state.0, &state.1);
        let (m, k, _) = dp_core::replay_epoch(&start, epoch)
            .unwrap_or_else(|e| panic!("{}: replay failed: {e}", case.name));
        state = (m, k);
    }
    (case.verify)(&state.0, &state.1)
        .unwrap_or_else(|e| panic!("{}: replayed state wrong: {e}", case.name));

    // External output committed by the recording matches ground truth.
    if let Some(expected) = case.expected_external_bytes {
        let total: u64 = bundle
            .recording
            .external()
            .map(|c| c.bytes.len() as u64)
            .sum();
        assert_eq!(total, expected, "{}: external output bytes", case.name);
    }

    // Parallel replay agrees.
    let seq = replay_sequential(&bundle.recording, &case.spec.program).unwrap();
    let par = replay_parallel(&bundle.recording, &case.spec.program, 4).unwrap();
    assert_eq!(
        seq.final_hash, par.final_hash,
        "{}: parallel replay differs",
        case.name
    );
    assert_eq!(seq.instructions, par.instructions, "{}", case.name);
}

#[test]
fn pcomp_records_and_replays() {
    record_and_replay(&doubleplay::workloads::pcomp::build(2, Size::Small), 2);
}

#[test]
fn pfscan_records_and_replays() {
    record_and_replay(&doubleplay::workloads::pfscan::build(2, Size::Small), 2);
}

#[test]
fn aget_records_and_replays() {
    record_and_replay(&doubleplay::workloads::aget::build(2, Size::Small), 2);
}

#[test]
fn webserve_records_and_replays() {
    record_and_replay(&doubleplay::workloads::webserve::build(2, Size::Small), 2);
}

#[test]
fn kvstore_records_and_replays() {
    record_and_replay(&doubleplay::workloads::kvstore::build(2, Size::Small), 2);
}

#[test]
fn ocean_records_and_replays() {
    record_and_replay(&doubleplay::workloads::ocean::build(2, Size::Small), 2);
}

#[test]
fn water_records_and_replays() {
    record_and_replay(&doubleplay::workloads::water::build(2, Size::Small), 2);
}

#[test]
fn radix_records_and_replays() {
    record_and_replay(&doubleplay::workloads::radix::build(2, Size::Small), 2);
}

#[test]
fn four_thread_suite_records_cleanly() {
    for case in doubleplay::workloads::suite(4, Size::Small) {
        let config = DoublePlayConfig::new(4).epoch_cycles(150_000);
        let bundle = record(&case.spec, &config)
            .unwrap_or_else(|e| panic!("{}: record failed: {e}", case.name));
        let report = replay_sequential(&bundle.recording, &case.spec.program)
            .unwrap_or_else(|e| panic!("{}: replay failed: {e}", case.name));
        assert_eq!(report.epochs as u64, bundle.stats.epochs, "{}", case.name);
    }
}

#[test]
fn racy_workloads_record_with_recovery_and_replay_exactly() {
    for case in doubleplay::workloads::racy_suite(2, Size::Small) {
        let config = DoublePlayConfig {
            tp_quantum: 300,
            tp_jitter: 400,
            ..DoublePlayConfig::new(2).epoch_cycles(60_000)
        };
        let bundle = record(&case.spec, &config)
            .unwrap_or_else(|e| panic!("{}: record failed: {e}", case.name));
        // Replay must be exact even when the original diverged.
        let report = replay_sequential(&bundle.recording, &case.spec.program)
            .unwrap_or_else(|e| panic!("{}: replay failed: {e}", case.name));
        assert_eq!(report.epochs as u64, bundle.stats.epochs, "{}", case.name);
        // And the replayed state satisfies the (loose) racy verifier.
        let initial =
            Checkpoint::from_image(case.spec.program.clone(), bundle.recording.initial.clone());
        let mut state = (initial.machine, initial.kernel);
        for epoch in &bundle.recording.epochs {
            let start = Checkpoint::capture(&state.0, &state.1);
            let (m, k, _) = dp_core::replay_epoch(&start, epoch).unwrap();
            state = (m, k);
        }
        (case.verify)(&state.0, &state.1)
            .unwrap_or_else(|e| panic!("{}: replayed state wrong: {e}", case.name));
    }
}
