//! Integration: asynchronous signal delivery through the full
//! record/verify/replay stack, and recording persistence through disk.

use doubleplay::os::{abi, kernel::WorldConfig};
use doubleplay::prelude::*;
use doubleplay::vm::builder::ProgramBuilder;
use doubleplay::vm::{BinOp, Reg, Width};
use std::sync::Arc;

/// A guest where a "supervisor" thread periodically signals a worker; the
/// worker's handler increments a counter; the worker spins doing compute
/// until it has seen enough signals. Signal delivery points are
/// scheduling decisions that must be recorded and replayed exactly.
fn signal_spec() -> GuestSpec {
    let mut pb = ProgramBuilder::new();
    let hits = pb.global("hits", 8);
    let work = pb.global("work", 8);

    let mut h = pb.function("handler");
    h.consti(Reg(1), hits as i64);
    h.load(Reg(2), Reg(1), 0, Width::W8);
    h.add(Reg(2), Reg(2), 1i64);
    h.store(Reg(2), Reg(1), 0, Width::W8);
    h.ret();
    h.finish();
    let handler = pb.declare("handler");

    // Worker (tid 1): install handler, spin until hits >= 5.
    let mut w = pb.function("worker");
    let spin = w.label();
    let done = w.label();
    w.consti(Reg(0), 7);
    w.consti(Reg(1), handler.0 as i64);
    w.syscall(abi::SYS_SIGACTION);
    w.bind(spin);
    w.consti(Reg(9), work as i64);
    w.load(Reg(10), Reg(9), 0, Width::W8);
    w.add(Reg(10), Reg(10), 1i64);
    w.store(Reg(10), Reg(9), 0, Width::W8);
    w.consti(Reg(9), hits as i64);
    w.load(Reg(11), Reg(9), 0, Width::W8);
    w.bin(BinOp::Ltu, Reg(12), Reg(11), 5i64);
    w.jnz(Reg(12), spin);
    w.jmp(done);
    w.bind(done);
    w.consti(Reg(0), 0);
    w.syscall(abi::SYS_THREAD_EXIT);
    w.finish();
    let worker = pb.declare("worker");

    // Supervisor (tid 2): send 5 signals to the worker, sleeping between.
    let mut s = pb.function("supervisor");
    let top = s.label();
    let fin = s.label();
    s.consti(Reg(10), 0);
    s.bind(top);
    s.bin(BinOp::Ltu, Reg(11), Reg(10), 5i64);
    s.jz(Reg(11), fin);
    s.consti(Reg(0), 3_000);
    s.syscall(abi::SYS_SLEEP);
    s.consti(Reg(0), 1); // worker tid
    s.consti(Reg(1), 7);
    s.syscall(abi::SYS_KILL);
    s.add(Reg(10), Reg(10), 1i64);
    s.jmp(top);
    s.bind(fin);
    s.consti(Reg(0), 0);
    s.syscall(abi::SYS_THREAD_EXIT);
    s.finish();
    let supervisor = pb.declare("supervisor");

    let mut f = pb.function("main");
    for func in [worker, supervisor] {
        f.consti(Reg(0), func.0 as i64);
        f.consti(Reg(1), 0);
        f.consti(Reg(2), 0);
        f.syscall(abi::SYS_SPAWN);
    }
    for t in 1..=2 {
        f.consti(Reg(0), t);
        f.syscall(abi::SYS_JOIN);
    }
    f.consti(Reg(9), hits as i64);
    f.load(Reg(0), Reg(9), 0, Width::W8);
    f.syscall(abi::SYS_EXIT);
    f.finish();

    GuestSpec::new(
        "signals",
        Arc::new(pb.finish("main")),
        WorldConfig::default(),
    )
}

#[test]
fn signals_record_and_replay_exactly() {
    let spec = signal_spec();
    for seed in 0..3 {
        let config = DoublePlayConfig::new(2)
            .epoch_cycles(20_000)
            .hidden_seed(seed);
        let bundle =
            record(&spec, &config).unwrap_or_else(|e| panic!("seed {seed}: record failed: {e}"));
        let report = replay_sequential(&bundle.recording, &spec.program)
            .unwrap_or_else(|e| panic!("seed {seed}: replay failed: {e}"));
        assert_eq!(
            report.exit_code,
            Some(5),
            "seed {seed}: handler ran 5 times"
        );
        // At least one epoch's schedule must carry a signal event.
        let signals: usize = bundle
            .recording
            .epochs
            .iter()
            .flat_map(|e| e.schedule.events())
            .filter(|ev| matches!(ev, doubleplay::core::logs::SchedEvent::Signal { .. }))
            .count();
        assert_eq!(signals, 5, "seed {seed}: all deliveries recorded");
    }
}

#[test]
fn recording_survives_disk_roundtrip_and_replays() {
    let case = doubleplay::workloads::pcomp::build(2, Size::Small);
    let bundle = record(&case.spec, &DoublePlayConfig::new(2).epoch_cycles(100_000)).unwrap();
    let path = std::env::temp_dir().join(format!("dp-test-{}.rec", std::process::id()));
    bundle
        .recording
        .save(std::fs::File::create(&path).unwrap())
        .unwrap();
    let loaded = Recording::load(std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.epochs.len(), bundle.recording.epochs.len());
    assert_eq!(loaded.log_bytes(), bundle.recording.log_bytes());
    let a = replay_sequential(&bundle.recording, &case.spec.program).unwrap();
    let b = replay_sequential(&loaded, &case.spec.program).unwrap();
    assert_eq!(a, b);
    let par = replay_parallel(&loaded, &case.spec.program, 3).unwrap();
    assert_eq!(par.final_hash, a.final_hash);
}

#[test]
fn compact_recordings_replay_without_checkpoints() {
    let case = doubleplay::workloads::radix::build(2, Size::Small);
    let config = DoublePlayConfig::new(2)
        .epoch_cycles(150_000)
        .keep_checkpoints(false);
    let bundle = record(&case.spec, &config).unwrap();
    assert!(!bundle.recording.has_checkpoints());
    let report = replay_sequential(&bundle.recording, &case.spec.program).unwrap();
    assert_eq!(report.epochs as u64, bundle.stats.epochs);
    // Parallel replay needs checkpoints and must refuse cleanly.
    assert!(replay_parallel(&bundle.recording, &case.spec.program, 2).is_err());
}
