//! Randomized end-to-end property: for *any* hidden seed and epoch length,
//! recording succeeds and the recording replays exactly — including on
//! racy guests, where divergence/recovery fires along the way. This is the
//! system's core guarantee under adversarial schedules.

use doubleplay::prelude::*;
use dp_support::check::check;

#[test]
fn any_schedule_of_a_racy_guest_records_and_replays() {
    check(
        "any_schedule_of_a_racy_guest_records_and_replays",
        12,
        |g| {
            let seed = g.u64();
            let epoch_kcycles = g.range(20, 200);
            let quantum = g.range(100, 2_000);
            let case = doubleplay::workloads::racey::counter(2, Size::Small);
            let config = DoublePlayConfig {
                tp_quantum: quantum,
                tp_jitter: quantum,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(epoch_kcycles * 1_000)
                    .hidden_seed(seed)
            };
            let bundle = record(&case.spec, &config).expect("record failed");
            assert_eq!(
                bundle.stats.committed + bundle.stats.divergences,
                bundle.stats.epochs
            );
            let report =
                replay_sequential(&bundle.recording, &case.spec.program).expect("replay failed");
            assert_eq!(report.epochs as u64, bundle.stats.epochs);
            // The recorded outcome is a plausible racy result.
            let exit = report.exit_code.expect("guest halted");
            assert!(exit > 0 && exit <= 8_000);
            // Parallel replay agrees with sequential.
            let par = replay_parallel(&bundle.recording, &case.spec.program, 3)
                .expect("parallel replay failed");
            assert_eq!(par.final_hash, report.final_hash);
        },
    );
}

#[test]
fn any_schedule_of_a_synchronized_guest_commits_every_epoch() {
    check(
        "any_schedule_of_a_synchronized_guest_commits_every_epoch",
        8,
        |g| {
            let seed = g.u64();
            let epoch_kcycles = g.range(20, 150);
            let case = doubleplay::workloads::kvstore::build(2, Size::Small);
            let config = DoublePlayConfig::new(2)
                .epoch_cycles(epoch_kcycles * 1_000)
                .hidden_seed(seed);
            let bundle = record(&case.spec, &config).expect("record failed");
            // Data-race-free: the sync-ordered hints must always verify.
            assert_eq!(bundle.stats.divergences, 0, "DRF guest diverged");
            let report =
                replay_sequential(&bundle.recording, &case.spec.program).expect("replay failed");
            assert_eq!(report.exit_code, Some(4_000));
        },
    );
}
