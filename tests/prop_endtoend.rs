//! Randomized end-to-end property: for *any* hidden seed and epoch length,
//! recording succeeds and the recording replays exactly — including on
//! racy guests, where divergence/recovery fires along the way. This is the
//! system's core guarantee under adversarial schedules.

use doubleplay::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn any_schedule_of_a_racy_guest_records_and_replays(
        seed in any::<u64>(),
        epoch_kcycles in 20u64..200,
        quantum in 100u64..2_000,
    ) {
        let case = doubleplay::workloads::racey::counter(2, Size::Small);
        let config = DoublePlayConfig {
            tp_quantum: quantum,
            tp_jitter: quantum,
            ..DoublePlayConfig::new(2)
                .epoch_cycles(epoch_kcycles * 1_000)
                .hidden_seed(seed)
        };
        let bundle = record(&case.spec, &config).expect("record failed");
        prop_assert_eq!(
            bundle.stats.committed + bundle.stats.divergences,
            bundle.stats.epochs
        );
        let report = replay_sequential(&bundle.recording, &case.spec.program)
            .expect("replay failed");
        prop_assert_eq!(report.epochs as u64, bundle.stats.epochs);
        // The recorded outcome is a plausible racy result.
        let exit = report.exit_code.expect("guest halted");
        prop_assert!(exit > 0 && exit <= 8_000);
        // Parallel replay agrees with sequential.
        let par = replay_parallel(&bundle.recording, &case.spec.program, 3)
            .expect("parallel replay failed");
        prop_assert_eq!(par.final_hash, report.final_hash);
    }

    #[test]
    fn any_schedule_of_a_synchronized_guest_commits_every_epoch(
        seed in any::<u64>(),
        epoch_kcycles in 20u64..150,
    ) {
        let case = doubleplay::workloads::kvstore::build(2, Size::Small);
        let config = DoublePlayConfig::new(2)
            .epoch_cycles(epoch_kcycles * 1_000)
            .hidden_seed(seed);
        let bundle = record(&case.spec, &config).expect("record failed");
        // Data-race-free: the sync-ordered hints must always verify.
        prop_assert_eq!(bundle.stats.divergences, 0, "DRF guest diverged");
        let report = replay_sequential(&bundle.recording, &case.spec.program)
            .expect("replay failed");
        prop_assert_eq!(report.exit_code, Some(4_000));
    }
}
